// Hash-consing interner for symbolic expressions (docs/symex_interning.md).
//
// Every SymExpr built through the expr.h builders is routed through a
// process-wide sharded intern table, so structurally equal expression
// DAGs are pointer-identical and `struct_eq(a, b)` collapses to `a == b`.
// Each node carries a precomputed 64-bit structural fingerprint (children
// hashed by their fingerprints, not their rendered keys), which gives the
// solver, the solver cache, and canonical orderings O(1) word compares
// where they previously concatenated and compared O(subtree) key strings.
//
// Collision posture: fingerprints *gate* equality, they never decide it.
// Inside the intern table a fingerprint match is confirmed by a shallow
// structural compare (kind + payload + child pointers); consumers that
// map by fingerprint (solver term tables, the solver cache) confirm a
// hit with pointer/structural equality before trusting it.
//
// The table holds weak references: nodes die with their last SymRef, and
// dead entries are pruned opportunistically, so the interner never pins
// memory beyond the live expression graph.
//
// Measurement toggle: setting NFACTOR_SYMEX_INTERN=0 in the environment
// (read once at process start) bypasses the table — builders allocate
// fresh nodes and struct_eq falls back to fingerprint + canonical-key
// comparison. Semantics are identical either way; the toggle exists so
// EXPERIMENTS.md can measure what hash-consing buys.
#pragma once

#include <cstdint>
#include <string>

#include "symex/expr.h"

namespace nfactor::symex {

/// Cumulative interner counters (process-wide, across all threads).
struct InternStats {
  std::uint64_t nodes = 0;  ///< unique nodes allocated (intern misses)
  std::uint64_t hits = 0;   ///< builder calls answered by an existing node
  std::uint64_t bytes = 0;  ///< approximate bytes of the unique nodes
  std::size_t live = 0;     ///< nodes currently alive in the table
  std::size_t buckets = 0;  ///< occupied fingerprint buckets
};

/// False iff NFACTOR_SYMEX_INTERN=0 was set when the process started.
bool intern_enabled();

/// Snapshot of the interner counters. `live`/`buckets` sweep the table
/// under the shard locks — cold-path only (--stats, tests).
InternStats intern_stats();

/// One-line occupancy digest for CLI --stats output.
std::string intern_summary();

/// Mirror the counters into the default obs registry as the
/// `symex.intern.{nodes,hits,bytes}` counters (publishing deltas since
/// the previous call, so repeated publishes stay monotonic) and the
/// `symex.intern.live_nodes` gauge. Called once per pipeline run — the
/// hot intern path itself only touches interner-local atomics.
void publish_intern_metrics();

/// Canonicalize a fully built node: computes its structural fingerprint
/// and returns the unique shared node for that structure (allocating it
/// on first sight). Builders' internal funnel — all SymExpr allocation
/// goes through here; not meant for direct use outside expr.cpp.
SymRef intern_node(SymExpr&& n);

}  // namespace nfactor::symex
