#include "symex/concrete_eval.h"

#include <algorithm>
#include <stdexcept>

namespace nfactor::symex {

namespace {

using runtime::Int;
using runtime::ListV;
using runtime::MapV;
using runtime::Tuple;
using runtime::Value;

Int as_int(const Value& v) {
  if (v.is_int()) return v.as_int();
  if (v.is_bool()) return v.as_bool() ? 1 : 0;
  throw std::runtime_error("expected int, got " + runtime::to_string(v));
}

bool as_bool(const Value& v) {
  if (v.is_bool()) return v.as_bool();
  if (v.is_int()) return v.as_int() != 0;
  throw std::runtime_error("expected bool, got " + runtime::to_string(v));
}

/// Materialize a map expression (base + store chain) into `out`.
void materialize_map(const SymRef& e, const ConcreteEnv& env, MapV& out) {
  if (e->kind == SymKind::kMapBase) {
    if (e->str_val != "{}") {
      const MapV* base = env.map_base(e->str_val);
      if (base != nullptr) out = *base;
    }
    return;
  }
  if (e->kind == SymKind::kMapStore) {
    materialize_map(e->operands[0], env, out);
    const Value key = eval_concrete(e->operands[1], env);
    const Value val = eval_concrete(e->operands[2], env);
    out.items[runtime::to_key(key)] = val;
    return;
  }
  throw std::runtime_error("not a map expression: " + to_string(*e));
}

}  // namespace

Value eval_concrete(const SymRef& e, const ConcreteEnv& env) {
  switch (e->kind) {
    case SymKind::kConstInt: return Value(e->int_val);
    case SymKind::kConstBool: return Value(e->bool_val);
    case SymKind::kConstStr: return Value(e->str_val);
    case SymKind::kConstTuple: return Value(e->tuple_val);
    case SymKind::kConstList: {
      auto out = std::make_shared<ListV>();
      for (const auto& x : e->operands) {
        out->items.push_back(eval_concrete(x, env));
      }
      return Value(std::move(out));
    }
    case SymKind::kVar: {
      if (e->str_val.starts_with("undef$")) {
        throw std::runtime_error("read of undefined symbol " + e->str_val);
      }
      return env.var(e->str_val);
    }
    case SymKind::kUn: {
      const Value x = eval_concrete(e->operands[0], env);
      if (e->un_op == lang::UnOp::kNeg) return Value(-as_int(x));
      return Value(!as_bool(x));
    }
    case SymKind::kBin: {
      using lang::BinOp;
      if (e->bin_op == BinOp::kAnd) {
        return Value(as_bool(eval_concrete(e->operands[0], env)) &&
                     as_bool(eval_concrete(e->operands[1], env)));
      }
      if (e->bin_op == BinOp::kOr) {
        return Value(as_bool(eval_concrete(e->operands[0], env)) ||
                     as_bool(eval_concrete(e->operands[1], env)));
      }
      const Value l = eval_concrete(e->operands[0], env);
      const Value r = eval_concrete(e->operands[1], env);
      switch (e->bin_op) {
        case BinOp::kEq: return Value(runtime::value_eq(l, r));
        case BinOp::kNe: return Value(!runtime::value_eq(l, r));
        default: break;
      }
      const Int a = as_int(l);
      const Int b = as_int(r);
      switch (e->bin_op) {
        case BinOp::kAdd: return Value(a + b);
        case BinOp::kSub: return Value(a - b);
        case BinOp::kMul: return Value(a * b);
        case BinOp::kDiv:
          if (b == 0) throw std::runtime_error("division by zero");
          return Value(a / b);
        case BinOp::kMod:
          if (b == 0) throw std::runtime_error("modulo by zero");
          return Value(((a % b) + b) % b);
        case BinOp::kLt: return Value(a < b);
        case BinOp::kLe: return Value(a <= b);
        case BinOp::kGt: return Value(a > b);
        case BinOp::kGe: return Value(a >= b);
        case BinOp::kBitAnd: return Value(a & b);
        case BinOp::kBitOr: return Value(a | b);
        case BinOp::kBitXor: return Value(a ^ b);
        case BinOp::kShl: return Value(a << (b & 63));
        case BinOp::kShr:
          return Value(static_cast<Int>(static_cast<std::uint64_t>(a) >> (b & 63)));
        default:
          throw std::runtime_error("unhandled binary op in concrete eval");
      }
    }
    case SymKind::kTupleExpr: {
      Tuple t;
      t.reserve(e->operands.size());
      for (const auto& x : e->operands) {
        t.push_back(as_int(eval_concrete(x, env)));
      }
      return Value(std::move(t));
    }
    case SymKind::kListGet: {
      const Value list = eval_concrete(e->operands[0], env);
      const Int idx = as_int(eval_concrete(e->operands[1], env));
      if (!list.is_list()) throw std::runtime_error("ListGet on non-list");
      const auto& items = list.as_list().items;
      if (idx < 0 || static_cast<std::size_t>(idx) >= items.size()) {
        throw std::runtime_error("list index out of range in model eval");
      }
      return items[static_cast<std::size_t>(idx)];
    }
    case SymKind::kMapBase:
      if (env.map_value && e->str_val != "{}") {
        if (const Value* v = env.map_value(e->str_val)) return *v;
      }
      [[fallthrough]];
    case SymKind::kMapStore: {
      auto out = std::make_shared<MapV>();
      materialize_map(e, env, *out);
      return Value(std::move(out));
    }
    case SymKind::kMapGet: {
      const Value m = eval_concrete(e->operands[0], env);
      const Value k = eval_concrete(e->operands[1], env);
      const auto& items = m.as_map().items;
      const auto it = items.find(runtime::to_key(k));
      if (it == items.end()) {
        throw std::runtime_error("map key not found in model eval");
      }
      return it->second;
    }
    case SymKind::kContains: {
      const Value c = eval_concrete(e->operands[0], env);
      const Value k = eval_concrete(e->operands[1], env);
      if (c.is_map()) {
        return Value(c.as_map().items.count(runtime::to_key(k)) != 0);
      }
      if (c.is_list()) {
        for (const auto& x : c.as_list().items) {
          if (runtime::value_eq(x, k)) return Value(true);
        }
        return Value(false);
      }
      throw std::runtime_error("Contains on non-container");
    }
    case SymKind::kCall: {
      const std::string& fn = e->str_val;
      if (fn == "hash") {
        return Value(runtime::dsl_hash(
            runtime::to_key(eval_concrete(e->operands[0], env))));
      }
      if (fn == "len") {
        const Value x = eval_concrete(e->operands[0], env);
        if (x.is_list()) return Value(static_cast<Int>(x.as_list().items.size()));
        if (x.is_map()) return Value(static_cast<Int>(x.as_map().items.size()));
        if (x.is_tuple()) return Value(static_cast<Int>(x.as_tuple().size()));
        if (x.is_str()) return Value(static_cast<Int>(x.as_str().size()));
        throw std::runtime_error("len() of unsupported value");
      }
      if (fn == "payload_contains") {
        if (env.input_packet == nullptr) {
          throw std::runtime_error("payload predicate needs the input packet");
        }
        const Value s = eval_concrete(e->operands[1], env);
        const auto& pay = env.input_packet->payload;
        const auto& needle = s.as_str();
        if (needle.empty()) return Value(true);
        const auto it =
            std::search(pay.begin(), pay.end(), needle.begin(), needle.end());
        return Value(it != pay.end());
      }
      if (fn == "tuple_get" || fn == "get") {
        const Value base = eval_concrete(e->operands[0], env);
        const Int idx = as_int(eval_concrete(e->operands[1], env));
        if (base.is_tuple()) {
          const auto& t = base.as_tuple();
          if (idx < 0 || static_cast<std::size_t>(idx) >= t.size()) {
            throw std::runtime_error("tuple index out of range");
          }
          return Value(t[static_cast<std::size_t>(idx)]);
        }
        if (base.is_list()) {
          const auto& items = base.as_list().items;
          if (idx < 0 || static_cast<std::size_t>(idx) >= items.size()) {
            throw std::runtime_error("list index out of range");
          }
          return items[static_cast<std::size_t>(idx)];
        }
        throw std::runtime_error("indexing unsupported value");
      }
      if (fn == "list") {
        auto out = std::make_shared<ListV>();
        for (const auto& x : e->operands) {
          out->items.push_back(eval_concrete(x, env));
        }
        return Value(std::move(out));
      }
      throw std::runtime_error("cannot concretely evaluate call '" + fn + "'");
    }
    case SymKind::kPacket:
      throw std::runtime_error("packet compound value in concrete eval");
  }
  throw std::runtime_error("unhandled SymExpr kind");
}

bool eval_concrete_bool(const SymRef& e, const ConcreteEnv& env) {
  return as_bool(eval_concrete(e, env));
}

}  // namespace nfactor::symex
