// Feasibility checker for path constraints. Decides the fragment NF
// branch conditions live in: (in)equalities between terms and constants
// with interval reasoning, term equalities via union-find, elementwise
// tuple equality decomposition, and opaque boolean atoms (map membership,
// uninterpreted predicates) with polarity-conflict detection.
//
// The solver is *sound for pruning*: kUnsat is only returned on a real
// conflict; anything it cannot decide is kSat (explore the path). This is
// the same posture KLEE takes with incomplete theory combinations.
#pragma once

#include <cstdint>
#include <vector>

#include "symex/expr.h"

namespace nfactor::symex {

enum class SatResult : std::uint8_t { kSat, kUnsat };

class Solver {
 public:
  /// Check the conjunction of `constraints`.
  SatResult check(const std::vector<SymRef>& constraints);

  std::uint64_t query_count() const { return queries_; }

 private:
  std::uint64_t queries_ = 0;
};

}  // namespace nfactor::symex
