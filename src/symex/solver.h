// Feasibility checker for path constraints. Decides the fragment NF
// branch conditions live in: (in)equalities between terms and constants
// with interval reasoning, term equalities via union-find, elementwise
// tuple equality decomposition, and opaque boolean atoms (map membership,
// uninterpreted predicates) with polarity-conflict detection.
//
// The solver is *sound for pruning*: kUnsat is only returned on a real
// conflict; anything it cannot decide is kSat (explore the path). This is
// the same posture KLEE takes with incomplete theory combinations.
//
// Queries are canonicalized (conjuncts sorted by structural fingerprint,
// deduplicated by struct_eq) before checking, which makes the verdict a
// pure function of the constraint *set* — the property the memoizing
// SolverCache below relies on, and what keeps parallel executor runs
// schedule-independent. Each query is then split into KLEE-style
// independence components (connected components of the share-a-symbol
// graph) and checked — and memoized — per component: whole path
// conditions are nearly always novel, but their components recur
// constantly, which is where cache hits come from.
//
// Since PR 4 every internal identity is pointer/fingerprint-based
// (hash-consed expressions, docs/symex_interning.md): term tables and
// opaque atoms hash by node fingerprint and confirm with struct_eq — a
// pointer compare when the interner is on — and cache keys are sorted
// fingerprint vectors instead of '&'-joined key strings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "symex/expr.h"

namespace nfactor::symex {

enum class SatResult : std::uint8_t { kSat, kUnsat };

/// Hash/equality functors for fingerprint-gated node maps: hash by the
/// precomputed structural fingerprint, confirm with struct_eq. A
/// fingerprint collision lands two distinct structures in one bucket and
/// is told apart by the equality functor — fingerprints gate, struct_eq
/// decides.
struct RefHash {
  std::size_t operator()(const SymRef& e) const {
    return static_cast<std::size_t>(e->fp);
  }
};
struct RefEq {
  bool operator()(const SymRef& a, const SymRef& b) const {
    return struct_eq(a, b);
  }
};

/// Deterministic strict weak order on expressions: fingerprint first,
/// canonical key only to break (rare) fingerprint collisions between
/// structurally distinct nodes. This is the order canonicalized
/// conjunctions are sorted in — stable across runs (fingerprints carry
/// no pointer bits), O(1) per comparison on the common path.
bool expr_less(const SymRef& a, const SymRef& b);

struct SolverCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Sharded memoization table from a canonical constraint conjunction to
/// the solver's verdict. Thread-safe: one mutex per shard, so concurrent
/// executor workers (and the orig/slice SE runs of one pipeline) share
/// verdicts with little contention. Bounded: when a shard fills up it is
/// bulk-evicted (the cache is a pure accelerator — eviction only costs
/// recomputation, never correctness).
///
/// Keys are sorted fingerprint vectors (see canonical_key) — O(n) words
/// to form instead of O(total subtree bytes) of string concatenation.
/// Each entry also stores the conjunct expressions themselves; a lookup
/// whose fingerprint key matches is confirmed elementwise with struct_eq
/// before the verdict is trusted, and treated as a miss otherwise, so a
/// fingerprint collision can never flip a verdict.
///
/// Metrics (src/obs): `symex.solver.cache.hits` / `.misses` /
/// `.evictions` counters accumulate across all cache instances.
class SolverCache {
 public:
  static constexpr std::size_t kShards = 16;

  explicit SolverCache(std::size_t max_entries = 1 << 20);

  /// Verdict for the conjunction `constraints` (canonicalized
  /// internally), if present and confirmed.
  std::optional<SatResult> lookup(const std::vector<SymRef>& constraints);
  void insert(const std::vector<SymRef>& constraints, SatResult verdict);

  /// Canonical cache key of a constraint conjunction: the structural
  /// fingerprints of the sorted, deduplicated conjuncts —
  /// order-insensitive, so `a && b` and `b && a` share one entry.
  static std::vector<std::uint64_t> canonical_key(
      const std::vector<SymRef>& constraints);

  std::size_t size() const;
  SolverCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::vector<SymRef> conj;  // canonical conjuncts, for hit confirmation
    SatResult verdict = SatResult::kSat;
  };
  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::vector<std::uint64_t>, Entry, KeyHash> map;
  };

  Shard& shard_for(const std::vector<std::uint64_t>& key);

  std::array<Shard, kShards> shards_;
  std::size_t max_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// One checker instance. Not thread-safe itself — the parallel executor
/// gives each worker its own Solver — but multiple Solvers may share one
/// SolverCache.
class Solver {
 public:
  Solver() = default;
  explicit Solver(SolverCache* cache) : cache_(cache) {}

  /// Check the conjunction of `constraints`.
  SatResult check(const std::vector<SymRef>& constraints);

  std::uint64_t query_count() const { return queries_; }
  /// Of query_count(): how many were answered entirely from the cache
  /// (every independence component hit) vs. needed the checker for at
  /// least one component. Both zero when no cache is attached;
  /// hits + misses == queries otherwise. The cache's own
  /// SolverCacheStats count per-component lookups, so they run higher.
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  std::uint64_t queries_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  SolverCache* cache_ = nullptr;
};

}  // namespace nfactor::symex
