#include "symex/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "lang/builtins.h"
#include "obs/obs.h"
#include "runtime/value.h"

namespace nfactor::symex {

namespace {

using lang::Expr;
using lang::ExprKind;

/// Pseudo-field carrying payload identity for uninterpreted payload
/// predicates; never touched by field stores.
constexpr const char* kPayloadField = "__payload";

std::size_t effective_jobs(int jobs) {
  if (jobs > 0) return static_cast<std::size_t>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

std::string ExecStats::to_string() const {
  std::ostringstream os;
  os << "paths=" << paths_completed << " truncated=" << paths_truncated
     << " pruned=" << paths_pruned << " forks=" << forks
     << " queries=" << solver_queries << " steps=" << steps;
  if (jobs > 1) os << " jobs=" << jobs;
  if (cache_hits + cache_misses > 0) {
    os << " cache=" << cache_hits << "/" << (cache_hits + cache_misses);
  }
  if (hit_path_cap) os << " [path-cap]";
  if (timed_out) os << " [timeout]";
  return os.str();
}

std::string ExecPath::signature() const {
  std::ostringstream os;
  os << "C:";
  std::set<std::string> cond_keys;
  for (const auto& c : constraints) cond_keys.insert(c->key());
  for (const auto& k : cond_keys) os << k << '&';
  os << "|S:";
  for (const auto& s : sends) {
    os << "snd(";
    for (const auto& [f, v] : s.fields) {
      if (f == kPayloadField) continue;
      os << f << '=' << v->key() << ';';
    }
    os << "@" << s.port->key() << ')';
  }
  os << "|T:";
  for (const auto& [var, v] : final_state) {
    // Only record state that actually changed from its initial symbol.
    if (v->kind == SymKind::kVar && v->str_val == var) continue;
    if (v->kind == SymKind::kMapBase && v->str_val == var) continue;
    os << var << '=' << v->key() << ';';
  }
  return os.str();
}

struct SymbolicExecutor::State {
  int node = -1;
  std::map<std::string, SymRef> env;
  std::vector<SymRef> pc;
  std::vector<BranchRecord> branches;
  std::vector<SendRecord> sends;
  std::set<int> nodes;
  std::map<int, int> visits;  // symbolic-branch node -> count
  std::size_t steps = 0;
  /// Branch-decision key: (node, taken ? 0 : 1) pairs, flattened.
  /// Serial DFS continues the true side inline and stacks the false
  /// sibling, so it completes paths exactly in lexicographic key order —
  /// which makes this key the canonical schedule-independent order for
  /// the parallel scheduler: lex-least-first popping reproduces the
  /// serial pop order at jobs=1, the final sort reproduces the serial
  /// output order at any width, and a state's pop-time key lower-bounds
  /// every path in its subtree (a prefix precedes all its extensions),
  /// which is what makes the path-cap survivor set canonical.
  std::vector<int> key;
};

SymRef const_expr_to_sym(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return make_int(static_cast<const lang::IntLit&>(e).value);
    case ExprKind::kBoolLit:
      return make_bool(static_cast<const lang::BoolLit&>(e).value);
    case ExprKind::kStrLit:
      return make_str(static_cast<const lang::StrLit&>(e).value);
    case ExprKind::kTupleLit: {
      std::vector<SymRef> elems;
      for (const auto& x : static_cast<const lang::TupleLit&>(e).elems) {
        elems.push_back(const_expr_to_sym(*x));
      }
      return make_tuple(std::move(elems));
    }
    case ExprKind::kListLit: {
      std::vector<SymRef> elems;
      for (const auto& x : static_cast<const lang::ListLit&>(e).elems) {
        elems.push_back(const_expr_to_sym(*x));
      }
      return make_list_const(std::move(elems));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const lang::Unary&>(e);
      return make_un(u.op, const_expr_to_sym(*u.operand));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      return make_bin(b.op, const_expr_to_sym(*b.lhs), const_expr_to_sym(*b.rhs));
    }
    default:
      throw std::invalid_argument("not a constant expression: " +
                                  lang::to_source(e));
  }
}

SymbolicExecutor::SymbolicExecutor(const ir::Module& m,
                                   const statealyzer::Result& cats)
    : m_(m), cats_(cats) {}

SymRef SymbolicExecutor::initial_global_value(const ir::Global& g) const {
  const bool is_cfg = cats_.is_cfg(g.name);
  switch (g.type) {
    case lang::Type::kMap:
      // State maps start as symbolic bases: membership is a state match.
      // Config maps (static rule tables) are also kept symbolic-base so
      // rule contents parameterize the model.
      return make_map_base(g.name);
    case lang::Type::kList:
    case lang::Type::kStr:
      // Containers/strings concretize from their initializers (bounded
      // loops over them unroll — the style restriction of §3.2).
      try {
        return const_expr_to_sym(*g.init);
      } catch (const std::invalid_argument&) {
        return make_var(g.name, is_cfg ? VarClass::kCfg : VarClass::kState);
      }
    default:
      return make_var(g.name, is_cfg ? VarClass::kCfg : VarClass::kState);
  }
}

SymRef SymbolicExecutor::lookup(const std::string& var, State& st) const {
  const auto it = st.env.find(var);
  if (it != st.env.end()) return it->second;
  // Read of a variable with no definition on this path: give it a fresh
  // opaque symbol (can arise when executing slices or on paths where the
  // defining branch side was not taken in the original code).
  SymRef v = make_var("undef$" + var, VarClass::kLocal);
  st.env.emplace(var, v);
  return v;
}

SymRef SymbolicExecutor::eval_call(const lang::Call& c, State& st) const {
  if (c.callee == "len") {
    const SymRef x = eval(*c.args[0], st);
    if (x->kind == SymKind::kConstList) {
      return make_int(static_cast<Int>(x->operands.size()));
    }
    if (x->kind == SymKind::kConstTuple) {
      return make_int(static_cast<Int>(x->tuple_val.size()));
    }
    if (x->kind == SymKind::kTupleExpr) {
      return make_int(static_cast<Int>(x->operands.size()));
    }
    if (x->kind == SymKind::kConstStr) {
      return make_int(static_cast<Int>(x->str_val.size()));
    }
    return make_call("len", {x});
  }
  if (c.callee == "hash") {
    const SymRef x = eval(*c.args[0], st);
    if (x->kind == SymKind::kConstTuple) {
      return make_int(runtime::dsl_hash(x->tuple_val));
    }
    if (x->kind == SymKind::kConstInt) {
      return make_int(runtime::dsl_hash({x->int_val}));
    }
    return make_call("hash", {x});
  }
  if (c.callee == "payload_contains") {
    const SymRef pkt = eval(*c.args[0], st);
    const SymRef needle = eval(*c.args[1], st);
    SymRef payload_id = make_var(std::string("pkt.") + kPayloadField,
                                 VarClass::kPkt);
    if (pkt->kind == SymKind::kPacket) {
      const auto it = pkt->fields.find(kPayloadField);
      if (it != pkt->fields.end()) payload_id = it->second;
    }
    return make_call("payload_contains", {payload_id, needle});
  }
  throw std::invalid_argument("unsupported pure builtin in symbolic eval: " +
                              c.callee);
}

SymRef SymbolicExecutor::eval(const Expr& e, State& st) const {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return make_int(static_cast<const lang::IntLit&>(e).value);
    case ExprKind::kBoolLit:
      return make_bool(static_cast<const lang::BoolLit&>(e).value);
    case ExprKind::kStrLit:
      return make_str(static_cast<const lang::StrLit&>(e).value);
    case ExprKind::kMapLit:
      return make_map_base("{}" );  // fresh empty map value
    case ExprKind::kVarRef:
      return lookup(static_cast<const lang::VarRef&>(e).name, st);
    case ExprKind::kUnary: {
      const auto& u = static_cast<const lang::Unary&>(e);
      return make_un(u.op, eval(*u.operand, st));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      if (b.op == lang::BinOp::kIn) {
        return make_contains(eval(*b.rhs, st), eval(*b.lhs, st));
      }
      return make_bin(b.op, eval(*b.lhs, st), eval(*b.rhs, st));
    }
    case ExprKind::kTupleLit: {
      std::vector<SymRef> elems;
      for (const auto& x : static_cast<const lang::TupleLit&>(e).elems) {
        elems.push_back(eval(*x, st));
      }
      return make_tuple(std::move(elems));
    }
    case ExprKind::kListLit: {
      std::vector<SymRef> elems;
      bool all_const = true;
      for (const auto& x : static_cast<const lang::ListLit&>(e).elems) {
        elems.push_back(eval(*x, st));
        all_const &= elems.back()->kind == SymKind::kConstInt ||
                     elems.back()->kind == SymKind::kConstTuple;
      }
      if (all_const) return make_list_const(std::move(elems));
      return make_call("list", std::move(elems));
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const lang::Index&>(e);
      const SymRef base = eval(*i.base, st);
      const SymRef idx = eval(*i.index, st);
      if (base->kind == SymKind::kConstTuple) {
        if (is_const_int(idx) && idx->int_val >= 0 &&
            static_cast<std::size_t>(idx->int_val) < base->tuple_val.size()) {
          return make_int(base->tuple_val[static_cast<std::size_t>(idx->int_val)]);
        }
        return make_call("tuple_get", {base, idx});
      }
      if (base->kind == SymKind::kTupleExpr) {
        if (is_const_int(idx) && idx->int_val >= 0 &&
            static_cast<std::size_t>(idx->int_val) < base->operands.size()) {
          return base->operands[static_cast<std::size_t>(idx->int_val)];
        }
        return make_call("tuple_get", {base, idx});
      }
      if (base->kind == SymKind::kConstList) return make_list_get(base, idx);
      if (base->kind == SymKind::kMapBase ||
          base->kind == SymKind::kMapStore) {
        return make_map_get(base, idx);
      }
      // Opaque container value.
      return make_call("get", {base, idx});
    }
    case ExprKind::kField: {
      const auto& f = static_cast<const lang::FieldRef&>(e);
      const SymRef base = eval(*f.base, st);
      if (base->kind == SymKind::kPacket) {
        const auto it = base->fields.find(f.field);
        if (it != base->fields.end()) return it->second;
      }
      return make_call("field_" + f.field, {base});
    }
    case ExprKind::kCall:
      return eval_call(static_cast<const lang::Call&>(e), st);
  }
  throw std::invalid_argument("unhandled expression kind in symbolic eval");
}

std::vector<ExecPath> SymbolicExecutor::run(const ExecOptions& opts,
                                            ExecStats* stats_out) {
  OBS_SPAN_VAR(run_span, "symex.run");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t jobs = effective_jobs(opts.jobs);

  // Run-local verdict memo when none was supplied: this run's workers
  // still share verdicts with each other. (Serial runs with no cache get
  // none — exactly today's behavior.)
  std::optional<SolverCache> local_cache;
  SolverCache* cache = opts.solver_cache;
  if (cache == nullptr && jobs > 1) cache = &local_cache.emplace();

  auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  auto node_enabled = [&](int id) {
    return opts.filter == nullptr || opts.filter->count(id) != 0;
  };

  // Initial state.
  State init;
  init.node = m_.body.entry;
  if (opts.initial_globals != nullptr) {
    init.env = *opts.initial_globals;
  } else {
    for (const auto& g : m_.globals) {
      init.env[g.name] = initial_global_value(g);
    }
    // Init-section definitions: treat like state scalars (persistent).
    for (const auto& v : m_.persistent) {
      if (!init.env.count(v)) {
        init.env[v] = make_var(v, cats_.is_cfg(v) ? VarClass::kCfg
                                                  : VarClass::kState);
      }
    }
  }
  if (opts.initial_pc != nullptr) init.pc = *opts.initial_pc;

  struct Finalized {
    std::vector<int> key;
    ExecPath path;
  };

  // Scheduler state shared by all workers under one mutex. The budgets
  // (timeout, path cap) live here, so they are global across workers and
  // checked at the same granularity as the old serial loop: between
  // scheduled states.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<State> pending;  // min-heap on State::key, lex-least front
    std::size_t in_flight = 0;   // states currently being executed
    std::vector<Finalized> done;
    /// The max_paths lex-least finalized keys so far. Once full, any
    /// pending state whose pop-time key exceeds the largest entry can be
    /// discarded: every path in its subtree sorts after the survivors —
    /// exactly the work a serial run stops before reaching.
    std::multiset<std::vector<int>> best;
    bool stop = false;
    bool timed_out = false;
    bool discarded = false;  // pending work dropped by the path cap
    ExecStats agg;
    std::exception_ptr error;
  } sh;

  auto heap_less = [](const State& a, const State& b) { return b.key < a.key; };

  // Caller holds sh.mu.
  auto prune_pending = [&] {
    if (sh.best.size() < opts.max_paths) return;
    while (!sh.pending.empty()) {
      if (opts.max_paths > 0 && !(*sh.best.rbegin() < sh.pending.front().key)) {
        break;
      }
      std::pop_heap(sh.pending.begin(), sh.pending.end(), heap_less);
      sh.pending.pop_back();
      sh.discarded = true;
    }
  };

  sh.pending.push_back(std::move(init));

  auto worker = [&](std::size_t worker_id) {
#if NFACTOR_OBS_ENABLED
    // Serial runs keep today's exact trace shape: worker spans only
    // appear at jobs > 1.
    std::optional<obs::Span> worker_span;
    if (jobs > 1) {
      worker_span.emplace(obs::default_tracer(), "symex.worker");
      worker_span->attr("worker", static_cast<std::int64_t>(worker_id));
    }
#else
    (void)worker_id;
#endif
    Solver solver(cache);
    std::size_t local_steps = 0;
    std::size_t local_forks = 0;
    std::size_t local_pruned = 0;
    std::size_t local_states = 0;

#if NFACTOR_OBS_ENABLED
    // Per-continuation profile accumulators (provenance collection hot
    // path — compiled out with the obs kill switch). A continuation is
    // one pop -> finalize run; finalize() moves these into the completed
    // path's PathProfile, which is what makes per-path profiles an exact
    // partition of the worker's measured solver/exec time.
    std::uint64_t cont_queries = 0;
    std::uint64_t cont_solver_ns = 0;
    std::uint64_t local_solver_ns = 0;
    std::vector<std::pair<int, std::uint64_t>> cont_branch_ns;
    std::int64_t cont_t0 = 0;
    const auto prof_now = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
#endif

    auto finalize = [&](State& st, bool truncated) {
      ExecPath p;
      p.branches = std::move(st.branches);
      for (const auto& b : p.branches) {
        const SymRef eff = b.effective();
        if (!is_const_bool(eff)) p.constraints.push_back(eff);
      }
      p.sends = std::move(st.sends);
      for (const auto& v : m_.persistent) {
        const auto it = st.env.find(v);
        if (it != st.env.end()) p.final_state[v] = it->second;
      }
      p.nodes = std::move(st.nodes);
      p.truncated = truncated;
#if NFACTOR_OBS_ENABLED
      p.profile.solver_queries = cont_queries;
      p.profile.solver_ns = cont_solver_ns;
      p.profile.exec_ns = static_cast<std::uint64_t>(prof_now() - cont_t0);
      p.profile.branch_solver_ns = std::move(cont_branch_ns);
      cont_branch_ns.clear();
#endif
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.done.push_back({std::move(st.key), std::move(p)});
      if (opts.max_paths > 0) {
        sh.best.insert(sh.done.back().key);
        if (sh.best.size() > opts.max_paths) {
          sh.best.erase(std::prev(sh.best.end()));
        }
      }
      prune_pending();
    };

    while (true) {
      std::optional<State> popped;
      {
        std::unique_lock<std::mutex> lock(sh.mu);
        while (true) {
          if (sh.stop) break;
          if (elapsed_ms() > opts.timeout_ms) {
            sh.timed_out = true;
            sh.stop = true;
            sh.pending.clear();
            sh.cv.notify_all();
            break;
          }
          prune_pending();
          if (!sh.pending.empty()) {
            std::pop_heap(sh.pending.begin(), sh.pending.end(), heap_less);
            popped.emplace(std::move(sh.pending.back()));
            sh.pending.pop_back();
            ++sh.in_flight;
            break;
          }
          if (sh.in_flight == 0) {
            // Natural end: nothing pending, nothing running anywhere.
            sh.stop = true;
            sh.cv.notify_all();
            break;
          }
          // Bounded wait so a sleeping worker still notices the deadline.
          sh.cv.wait_for(lock, std::chrono::milliseconds(50));
        }
      }
      if (!popped) break;
      State st = std::move(*popped);
      ++local_states;
#if NFACTOR_OBS_ENABLED
      cont_queries = 0;
      cont_solver_ns = 0;
      cont_branch_ns.clear();
      cont_t0 = prof_now();
#endif

    // One span per scheduled continuation: from the fork (or the root)
    // that created this state until it terminates or forks off children.
    OBS_SPAN_VAR(path_span, "symex.path");
    const std::size_t steps_before = st.steps;
    try {

    bool done = false;
    while (!done) {
      if (++st.steps > opts.max_steps_per_path) {
        finalize(st, /*truncated=*/true);
        break;
      }
      ++local_steps;
      const ir::Instr& n = m_.body.node(st.node);
      const bool enabled = node_enabled(n.id);
      int next = n.succs.empty() ? m_.body.exit : n.succs[0];

      if (st.node == m_.body.exit) {
        finalize(st, /*truncated=*/false);
        break;
      }
      if (enabled && n.kind != ir::InstrKind::kEntry &&
          n.kind != ir::InstrKind::kExit) {
        st.nodes.insert(n.id);
      }

      switch (n.kind) {
        case ir::InstrKind::kEntry:
        case ir::InstrKind::kExit:
          break;
        case ir::InstrKind::kRecv: {
          std::map<std::string, SymRef> fields;
          for (const auto& f : lang::packet_fields()) {
            fields[f.name] = make_var(opts.pkt_prefix + f.name, VarClass::kPkt);
          }
          fields[kPayloadField] =
              make_var(opts.pkt_prefix + kPayloadField, VarClass::kPkt);
          st.env[n.var] = make_packet(std::move(fields));
          break;
        }
        case ir::InstrKind::kAssign:
          if (enabled) st.env[n.var] = eval(*n.value, st);
          break;
        case ir::InstrKind::kFieldStore:
          if (enabled) {
            const SymRef base = lookup(n.var, st);
            if (base->kind == SymKind::kPacket) {
              auto fields = base->fields;
              fields[n.field] = eval(*n.value, st);
              st.env[n.var] = make_packet(std::move(fields));
            }
          }
          break;
        case ir::InstrKind::kIndexStore:
          if (enabled) {
            const SymRef base = lookup(n.var, st);
            const SymRef key = eval(*n.index, st);
            const SymRef val = eval(*n.value, st);
            if (base->kind == SymKind::kMapBase ||
                base->kind == SymKind::kMapStore) {
              st.env[n.var] = make_map_store(base, key, val);
            } else if (base->kind == SymKind::kConstList &&
                       is_const_int(key) && key->int_val >= 0 &&
                       static_cast<std::size_t>(key->int_val) <
                           base->operands.size()) {
              auto elems = base->operands;
              elems[static_cast<std::size_t>(key->int_val)] = val;
              st.env[n.var] = make_list_const(std::move(elems));
            } else {
              st.env[n.var] = make_call("list_store", {base, key, val});
            }
          }
          break;
        case ir::InstrKind::kSend:
          if (enabled) {
            const SymRef pkt = eval(*n.value, st);
            SendRecord rec;
            if (pkt->kind == SymKind::kPacket) {
              rec.fields = pkt->fields;
            }
            rec.port = eval(*n.aux, st);
            st.sends.push_back(std::move(rec));
          }
          break;
        case ir::InstrKind::kCall:
          if (enabled) {
            if (n.callee == "push") {
              const SymRef q = eval(*n.args[0], st);
              const SymRef v = eval(*n.args[1], st);
              if (n.args[0]->kind == ExprKind::kVarRef) {
                const auto& qn =
                    static_cast<const lang::VarRef&>(*n.args[0]).name;
                st.env[qn] = make_call("list_push", {q, v});
              }
            } else if (n.callee == "pop") {
              const SymRef q = eval(*n.args[0], st);
              if (!n.var.empty()) st.env[n.var] = make_call("list_front", {q});
              if (n.args[0]->kind == ExprKind::kVarRef) {
                const auto& qn =
                    static_cast<const lang::VarRef&>(*n.args[0]).name;
                st.env[qn] = make_call("list_rest", {q});
              }
            }
            // log(): no model-visible effect.
          }
          break;
        case ir::InstrKind::kBranch: {
          if (!enabled) {
            // Sliced-out branch: guards only sliced-out nodes (the slice
            // is control-dependence closed), so skip the loop/if body.
            next = n.succs[1];
            break;
          }
          const SymRef cond = eval(*n.value, st);
          if (is_const_bool(cond)) {
            next = cond->bool_val ? n.succs[0] : n.succs[1];
            break;
          }
          // Symbolic branch: loop bound, then two-sided SAT check.
          if (++st.visits[n.id] > opts.max_loop_iters) {
            finalize(st, /*truncated=*/true);
            done = true;
            break;
          }
          std::vector<SymRef> pc_true = st.pc;
          pc_true.push_back(cond);
          std::vector<SymRef> pc_false = st.pc;
          pc_false.push_back(negate(cond));
#if NFACTOR_OBS_ENABLED
          const std::int64_t q0 = prof_now();
#endif
          const bool sat_t = opts.assume_all_feasible ||
                             solver.check(pc_true) == SatResult::kSat;
          const bool sat_f = opts.assume_all_feasible ||
                             solver.check(pc_false) == SatResult::kSat;
#if NFACTOR_OBS_ENABLED
          if (!opts.assume_all_feasible) {
            const std::uint64_t qns =
                static_cast<std::uint64_t>(prof_now() - q0);
            cont_queries += 2;
            cont_solver_ns += qns;
            local_solver_ns += qns;
            cont_branch_ns.emplace_back(n.id, qns);
          }
#endif

          if (sat_t && sat_f) {
            ++local_forks;
            State other = st;  // fork
            other.node = n.succs[1];
            other.pc = std::move(pc_false);
            other.branches.push_back({n.id, cond, false, true});
            other.key.push_back(n.id);
            other.key.push_back(1);  // false side: lex-after the true side
            {
              const std::lock_guard<std::mutex> lock(sh.mu);
              sh.pending.push_back(std::move(other));
              std::push_heap(sh.pending.begin(), sh.pending.end(), heap_less);
              sh.cv.notify_one();
            }

            st.pc = std::move(pc_true);
            st.branches.push_back({n.id, cond, true, true});
            st.key.push_back(n.id);
            st.key.push_back(0);
            next = n.succs[0];
          } else if (sat_t) {
            ++local_pruned;
            st.pc = std::move(pc_true);
            st.branches.push_back({n.id, cond, true});
            st.key.push_back(n.id);
            st.key.push_back(0);
            next = n.succs[0];
          } else if (sat_f) {
            ++local_pruned;
            st.pc = std::move(pc_false);
            st.branches.push_back({n.id, cond, false});
            st.key.push_back(n.id);
            st.key.push_back(1);
            next = n.succs[1];
          } else {
            // Whole state infeasible (should not happen: pc was sat).
            ++local_pruned;
            done = true;
            break;
          }
          break;
        }
      }

      if (!done) st.node = next;
    }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(sh.mu);
      if (!sh.error) sh.error = std::current_exception();
      sh.stop = true;
      --sh.in_flight;
      sh.cv.notify_all();
      break;
    }

      path_span.attr("steps",
                     static_cast<std::int64_t>(st.steps - steps_before));
      {
        const std::lock_guard<std::mutex> lock(sh.mu);
        --sh.in_flight;
        if (sh.in_flight == 0 && sh.pending.empty()) {
          sh.stop = true;
          sh.cv.notify_all();
        }
      }
    }

#if NFACTOR_OBS_ENABLED
    if (worker_span) {
      worker_span->attr("states", static_cast<std::int64_t>(local_states));
      worker_span->attr("steps", static_cast<std::int64_t>(local_steps));
    }
#endif
    {
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.agg.steps += local_steps;
      sh.agg.forks += local_forks;
      sh.agg.paths_pruned += local_pruned;
      sh.agg.solver_queries += solver.query_count();
      sh.agg.cache_hits += solver.cache_hits();
      sh.agg.cache_misses += solver.cache_misses();
#if NFACTOR_OBS_ENABLED
      sh.agg.solver_ns += local_solver_ns;
#endif
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs > 1 ? jobs - 1 : 0);
  for (std::size_t w = 1; w < jobs; ++w) threads.emplace_back(worker, w);
  worker(0);  // the calling thread is always worker 0
  for (auto& t : threads) t.join();
  if (sh.error) std::rethrow_exception(sh.error);

  // Canonical merge: sort by decision key — exactly the order the serial
  // DFS completes paths in — then trim to the cap's survivor set. This
  // makes the returned vector byte-for-byte independent of the schedule.
  std::sort(sh.done.begin(), sh.done.end(),
            [](const Finalized& a, const Finalized& b) { return a.key < b.key; });
  bool trimmed = false;
  if (sh.done.size() > opts.max_paths) {
    sh.done.resize(opts.max_paths);
    trimmed = true;
  }

  ExecStats stats = sh.agg;
  stats.jobs = jobs;
  stats.timed_out = sh.timed_out;
  stats.hit_path_cap = trimmed || sh.discarded;

  std::vector<ExecPath> paths;
  paths.reserve(sh.done.size());
  for (auto& d : sh.done) {
    if (d.path.truncated) {
      ++stats.paths_truncated;
    } else {
      ++stats.paths_completed;
    }
    d.path.decision_key = std::move(d.key);
    paths.push_back(std::move(d.path));
  }
  stats.wall_ms = elapsed_ms();

  // Aggregate per-run counters into the registry once, off the hot loop.
  OBS_COUNT_N("symex.paths.completed", stats.paths_completed);
  OBS_COUNT_N("symex.paths.truncated", stats.paths_truncated);
  OBS_COUNT_N("symex.paths.pruned", stats.paths_pruned);
  OBS_COUNT_N("symex.forks", stats.forks);
  OBS_COUNT_N("symex.steps", stats.steps);
  if (stats.hit_path_cap) OBS_COUNT("symex.hit_path_cap");
  if (stats.timed_out) OBS_COUNT("symex.timed_out");
  run_span.attr("paths", static_cast<std::int64_t>(paths.size()));
  run_span.attr("steps", static_cast<std::int64_t>(stats.steps));
  run_span.attr("queries", static_cast<std::int64_t>(stats.solver_queries));
  run_span.attr("jobs", static_cast<std::int64_t>(jobs));
  if (stats.cache_hits + stats.cache_misses > 0) {
    run_span.attr("cache_hits", static_cast<std::int64_t>(stats.cache_hits));
    run_span.attr("cache_misses",
                  static_cast<std::int64_t>(stats.cache_misses));
  }

  if (stats_out != nullptr) *stats_out = stats;
  return paths;
}

}  // namespace nfactor::symex
