// KLEE-style symbolic executor over the per-packet CFG. Forks at
// branches whose condition is symbolic, carries per-path constraint sets,
// prunes infeasible paths with the solver, bounds loops, and produces one
// ExecPath record per feasible terminal path — the raw material of
// Algorithm 1's FindExecPaths() and of the model refactoring step.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "statealyzer/statealyzer.h"
#include "symex/expr.h"
#include "symex/solver.h"

namespace nfactor::symex {

/// One send() observed on a path: the packet's symbolic field values at
/// the call, and the output port expression.
struct SendRecord {
  std::map<std::string, SymRef> fields;
  SymRef port;
};

/// One branch decision on a path.
struct BranchRecord {
  int node = -1;
  SymRef cond;   // condition as evaluated (before polarity)
  bool taken = false;
  /// True when both sides were feasible here, i.e. a sibling state was
  /// forked off (provenance: this is a fork site, not a forced branch).
  bool forked = false;

  /// The condition with polarity applied.
  SymRef effective() const { return taken ? cond : negate(cond); }
};

/// Per-path execution profile — the timing half of the provenance record
/// (src/obs/provenance.h). Collected on the executor hot path only when
/// the NFACTOR_OBS kill switch is on; all-zero otherwise. Attribution
/// rule: a scheduled continuation (pop -> finalize) charges its solver
/// checks and wall time to the one path it finalizes, so per-path
/// profiles exactly partition the run's measured totals, and the shared
/// prefix before a fork is charged to the lex-least path through it —
/// a deterministic rule, because the fork tree is schedule-independent.
/// solver_queries is therefore byte-stable across `jobs` widths; the
/// _ns fields are wall-clock and vary run to run (never export them
/// into artifacts that must be byte-stable).
struct PathProfile {
  std::uint64_t solver_queries = 0;  ///< feasibility checks in this segment
  std::uint64_t solver_ns = 0;       ///< wall ns spent inside those checks
  std::uint64_t exec_ns = 0;         ///< wall ns of the finalizing continuation
  /// Solver ns per branch site in this segment: (CFG node id, ns).
  std::vector<std::pair<int, std::uint64_t>> branch_solver_ns;
};

struct ExecPath {
  std::vector<BranchRecord> branches;
  std::vector<SymRef> constraints;  // polarity-applied symbolic conjuncts
  std::vector<SendRecord> sends;
  /// Final symbolic values of persistent variables (state after the
  /// packet), as expressions over initial-state/packet/config symbols.
  std::map<std::string, SymRef> final_state;
  std::set<int> nodes;  // executed CFG nodes
  bool truncated = false;
  /// Canonical branch-decision key: (node, taken ? 0 : 1) pairs,
  /// flattened — the scheduler's lex-least ordering key (see
  /// State::key), surfaced as provenance. Schedule-independent.
  std::vector<int> decision_key;
  /// Per-path profile; zeros when NFACTOR_OBS is compiled out.
  PathProfile profile;

  /// Canonical signature for path-set comparison (§5 accuracy).
  std::string signature() const;
};

struct ExecOptions {
  int max_loop_iters = 8;           // symbolic-branch revisits per path
  std::size_t max_paths = 4096;     // completed-path cap
  std::size_t max_steps_per_path = 50000;
  double timeout_ms = 120000.0;
  const std::set<int>* filter = nullptr;  // run only these nodes (slice SE)
  /// Ablation switch: skip the feasibility solver and fork both sides of
  /// every symbolic branch. Produces spurious (infeasible) paths — used
  /// by bench_ablation to quantify what the solver buys.
  bool assume_all_feasible = false;

  /// Worker threads exploring pending forks: 0 picks
  /// hardware_concurrency, 1 runs serially on the calling thread. Any
  /// value produces byte-identical paths, models, and path/fork stats
  /// (completed paths are re-sorted into the serial exploration order;
  /// the path cap keeps the same canonical survivor set at every width).
  /// Only cache_hits/cache_misses vary with the schedule.
  int jobs = 0;
  /// Optional shared verdict memo. When null and jobs > 1 a run-local
  /// cache is created so this run's workers still share verdicts; pass
  /// one explicitly to also share across runs (the pipeline reuses one
  /// cache for its slice and original SE passes).
  SolverCache* solver_cache = nullptr;

  /// Multi-packet exploration hooks (see verify/multi_packet.h):
  /// symbol prefix for this packet's header fields ("pkt." by default,
  /// "pkt2." for the second packet of a sequence)...
  std::string pkt_prefix = "pkt.";
  /// ...the persistent-variable environment to start from (defaults to
  /// the fresh symbolic initial state)...
  const std::map<std::string, SymRef>* initial_globals = nullptr;
  /// ...and path constraints inherited from earlier packets.
  const std::vector<SymRef>* initial_pc = nullptr;
};

struct ExecStats {
  std::size_t paths_completed = 0;
  std::size_t paths_truncated = 0;
  std::size_t paths_pruned = 0;  // infeasible branch sides cut by the solver
  std::size_t forks = 0;         // both-sides-feasible branch splits
  std::uint64_t solver_queries = 0;
  /// Of solver_queries: answered from / missed the shared SolverCache.
  /// Zero when no cache is in play. Schedule-dependent (two workers can
  /// race to first-compute the same key), so differential tests must not
  /// compare these across runs.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Wall ns spent inside solver feasibility checks, summed across all
  /// workers (zero when NFACTOR_OBS is compiled out). Wall-clock, so —
  /// like cache_hits — not comparable across runs or widths. This is the
  /// denominator of provenance solver-time accounting: the sum of
  /// per-path PathProfile::solver_ns differs from it only by states
  /// that never finalized (discarded by the path cap, infeasible, or cut
  /// by stop/timeout).
  std::uint64_t solver_ns = 0;
  std::uint64_t steps = 0;
  std::size_t jobs = 1;  // worker count actually used
  bool hit_path_cap = false;
  bool timed_out = false;
  double wall_ms = 0.0;

  /// One-line rendering for CLIs and logs.
  std::string to_string() const;
};

class SymbolicExecutor {
 public:
  SymbolicExecutor(const ir::Module& m, const statealyzer::Result& cats);

  std::vector<ExecPath> run(const ExecOptions& opts, ExecStats* stats = nullptr);

 private:
  struct State;

  SymRef initial_global_value(const ir::Global& g) const;
  SymRef eval(const lang::Expr& e, State& st) const;
  SymRef eval_call(const lang::Call& c, State& st) const;
  SymRef lookup(const std::string& var, State& st) const;

  const ir::Module& m_;
  const statealyzer::Result& cats_;
};

/// Convert a constant initializer expression to a symbolic constant.
/// Throws std::invalid_argument on non-constant input.
SymRef const_expr_to_sym(const lang::Expr& e);

}  // namespace nfactor::symex
