#include "symex/intern.h"

#include <array>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"

namespace nfactor::symex {

namespace {

// splitmix64 finalizer — the standard strong 64-bit mixer. Deterministic
// across runs and platforms (no ASLR-dependent inputs), so fingerprints
// are stable artifacts a cross-run cache key could be built on.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ v);
}

std::uint64_t hash_str(const std::string& s) {
  // FNV-1a.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Structural fingerprint: kind + payload + child *fingerprints* (children
/// are already interned, so their fps are final). kVar folds in var_class —
/// it is part of interned identity even though key() does not render it,
/// so same-named variables of different classes never collapse.
std::uint64_t fingerprint_of(const SymExpr& n) {
  std::uint64_t h = mix64(0x6e666163746f72ULL ^ static_cast<std::uint64_t>(n.kind));
  switch (n.kind) {
    case SymKind::kConstInt:
      h = combine(h, static_cast<std::uint64_t>(n.int_val));
      break;
    case SymKind::kConstBool:
      h = combine(h, n.bool_val ? 2 : 1);
      break;
    case SymKind::kConstStr:
    case SymKind::kMapBase:
      h = combine(h, hash_str(n.str_val));
      break;
    case SymKind::kConstTuple:
      h = combine(h, n.tuple_val.size());
      for (const Int x : n.tuple_val) {
        h = combine(h, static_cast<std::uint64_t>(x));
      }
      break;
    case SymKind::kVar:
      h = combine(h, hash_str(n.str_val));
      h = combine(h, static_cast<std::uint64_t>(n.var_class));
      break;
    case SymKind::kUn:
      h = combine(h, static_cast<std::uint64_t>(n.un_op));
      break;
    case SymKind::kBin:
      h = combine(h, static_cast<std::uint64_t>(n.bin_op));
      break;
    case SymKind::kCall:
      h = combine(h, hash_str(n.str_val));
      break;
    default:
      break;
  }
  h = combine(h, n.operands.size());
  for (const auto& c : n.operands) h = combine(h, c->fp);
  for (const auto& [f, v] : n.fields) {
    h = combine(h, hash_str(f));
    h = combine(h, v->fp);
  }
  return h;
}

/// Shallow structural equality for intern-time confirmation: children are
/// already canonical, so comparing them by pointer *is* deep structural
/// equality. Payload fields not used by a kind sit at their defaults on
/// both sides, so a field-wise compare is exact.
bool shallow_eq(const SymExpr& a, const SymExpr& b) {
  if (a.kind != b.kind || a.int_val != b.int_val ||
      a.bool_val != b.bool_val || a.bin_op != b.bin_op ||
      a.un_op != b.un_op || a.var_class != b.var_class ||
      a.str_val != b.str_val || a.tuple_val != b.tuple_val ||
      a.operands.size() != b.operands.size() ||
      a.fields.size() != b.fields.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.operands.size(); ++i) {
    if (a.operands[i].get() != b.operands[i].get()) return false;
  }
  auto it = b.fields.begin();
  for (const auto& [f, v] : a.fields) {
    if (f != it->first || v.get() != it->second.get()) return false;
    ++it;
  }
  return true;
}

std::uint64_t approx_bytes(const SymExpr& n) {
  std::uint64_t b = sizeof(SymExpr);
  b += n.str_val.capacity();
  b += n.tuple_val.capacity() * sizeof(Int);
  b += n.operands.capacity() * sizeof(SymRef);
  // std::map node overhead estimate: rb-tree node + key string.
  for (const auto& [f, v] : n.fields) {
    (void)v;
    b += 4 * sizeof(void*) + 16 + f.capacity();
  }
  return b;
}

struct Shard {
  std::mutex mu;
  // fp -> weak refs to every live node with that fingerprint (almost
  // always exactly one; collisions land in the same vector and are told
  // apart by shallow_eq).
  std::unordered_map<std::uint64_t, std::vector<std::weak_ptr<const SymExpr>>>
      table;
};

constexpr std::size_t kShards = 16;

struct Interner {
  std::array<Shard, kShards> shards;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> bytes{0};
};

Interner& interner() {
  static auto* i = new Interner();  // leaked: nodes may outlive main()
  return *i;
}

}  // namespace

bool intern_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("NFACTOR_SYMEX_INTERN");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

SymRef intern_node(SymExpr&& n) {
  n.fp = fingerprint_of(n);
  auto& in = interner();
  if (!intern_enabled()) {
    in.nodes.fetch_add(1, std::memory_order_relaxed);
    in.bytes.fetch_add(approx_bytes(n), std::memory_order_relaxed);
    return std::make_shared<const SymExpr>(std::move(n));
  }
  Shard& shard = in.shards[n.fp % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& bucket = shard.table[n.fp];
  for (std::size_t i = 0; i < bucket.size();) {
    SymRef existing = bucket[i].lock();
    if (!existing) {
      // Opportunistic prune: the node died with its last SymRef.
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      continue;
    }
    if (shallow_eq(*existing, n)) {
      in.hits.fetch_add(1, std::memory_order_relaxed);
      return existing;
    }
    ++i;
  }
  in.nodes.fetch_add(1, std::memory_order_relaxed);
  in.bytes.fetch_add(approx_bytes(n), std::memory_order_relaxed);
  auto fresh = std::make_shared<const SymExpr>(std::move(n));
  bucket.push_back(fresh);
  return fresh;
}

InternStats intern_stats() {
  auto& in = interner();
  InternStats s;
  s.nodes = in.nodes.load(std::memory_order_relaxed);
  s.hits = in.hits.load(std::memory_order_relaxed);
  s.bytes = in.bytes.load(std::memory_order_relaxed);
  for (auto& shard : in.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [fp, bucket] : shard.table) {
      (void)fp;
      std::size_t alive = 0;
      for (const auto& w : bucket) {
        if (!w.expired()) ++alive;
      }
      if (alive > 0) {
        ++s.buckets;
        s.live += alive;
      }
    }
  }
  return s;
}

std::string intern_summary() {
  const InternStats s = intern_stats();
  std::ostringstream os;
  if (!intern_enabled()) {
    os << "interner disabled (NFACTOR_SYMEX_INTERN=0): " << s.nodes
       << " nodes allocated, ~" << s.bytes / 1024 << " KiB";
    return os.str();
  }
  const std::uint64_t calls = s.nodes + s.hits;
  os << "interner: " << s.nodes << " unique nodes, " << s.hits << " hits";
  if (calls > 0) {
    os << " (" << (100.0 * static_cast<double>(s.hits) /
                   static_cast<double>(calls))
       << "% of " << calls << " builds)";
  }
  os << ", ~" << s.bytes / 1024 << " KiB, " << s.live << " live in "
     << s.buckets << " buckets";
  return os.str();
}

void publish_intern_metrics() {
#if NFACTOR_OBS_ENABLED
  // Counters in the obs registry are monotonic; the interner keeps its
  // own atomics off the registry mutex, so publishing mirrors *deltas*
  // accumulated since the previous publish.
  static std::mutex mu;
  static std::uint64_t pub_nodes = 0, pub_hits = 0, pub_bytes = 0;
  const InternStats s = intern_stats();
  std::lock_guard<std::mutex> lock(mu);
  if (s.nodes > pub_nodes) OBS_COUNT_N("symex.intern.nodes", s.nodes - pub_nodes);
  if (s.hits > pub_hits) OBS_COUNT_N("symex.intern.hits", s.hits - pub_hits);
  if (s.bytes > pub_bytes) OBS_COUNT_N("symex.intern.bytes", s.bytes - pub_bytes);
  pub_nodes = s.nodes;
  pub_hits = s.hits;
  pub_bytes = s.bytes;
  OBS_GAUGE("symex.intern.live_nodes", static_cast<double>(s.live));
#endif
}

}  // namespace nfactor::symex
