#include "diff/localizer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace nfactor::diff {

namespace {

void collect_const_ints(const symex::SymRef& e, std::set<std::int64_t>& out) {
  if (!e) return;
  if (e->kind == symex::SymKind::kConstInt) out.insert(e->int_val);
  for (const auto& op : e->operands) collect_const_ints(op, out);
  for (const auto& [name, f] : e->fields) collect_const_ints(f, out);
}

void collect_ast_ints(const lang::Expr& e, std::set<std::int64_t>& out) {
  if (e.kind == lang::ExprKind::kIntLit) {
    out.insert(static_cast<const lang::IntLit&>(e).value);
  }
  switch (e.kind) {
    case lang::ExprKind::kUnary:
      collect_ast_ints(*static_cast<const lang::Unary&>(e).operand, out);
      break;
    case lang::ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      collect_ast_ints(*b.lhs, out);
      collect_ast_ints(*b.rhs, out);
      break;
    }
    case lang::ExprKind::kCall:
      for (const auto& a : static_cast<const lang::Call&>(e).args) {
        collect_ast_ints(*a, out);
      }
      break;
    case lang::ExprKind::kTupleLit:
      for (const auto& x : static_cast<const lang::TupleLit&>(e).elems) {
        collect_ast_ints(*x, out);
      }
      break;
    case lang::ExprKind::kListLit:
      for (const auto& x : static_cast<const lang::ListLit&>(e).elems) {
        collect_ast_ints(*x, out);
      }
      break;
    case lang::ExprKind::kIndex: {
      const auto& ix = static_cast<const lang::Index&>(e);
      collect_ast_ints(*ix.base, out);
      collect_ast_ints(*ix.index, out);
      break;
    }
    case lang::ExprKind::kField:
      collect_ast_ints(*static_cast<const lang::FieldRef&>(e).base, out);
      break;
    default:
      break;
  }
}

/// Integer literals appearing anywhere in one IR instruction.
std::set<std::int64_t> instr_ints(const ir::Instr& n) {
  std::set<std::int64_t> out;
  if (n.value) collect_ast_ints(*n.value, out);
  if (n.index) collect_ast_ints(*n.index, out);
  if (n.aux) collect_ast_ints(*n.aux, out);
  for (const auto& a : n.args) collect_ast_ints(*a, out);
  return out;
}

/// Locations a changed symbolic variable corresponds to in a module's
/// IR: state/config symbols are named after the variable itself; packet
/// field symbols are "pkt.<field>" while IR locations use the module's
/// actual packet variable name.
std::set<std::string> changed_locations(
    const std::map<std::string, symex::VarClass>& vars,
    const ir::Module& module) {
  std::set<std::string> locs;
  for (const auto& [name, cls] : vars) {
    locs.insert(name);
    if (name.rfind("pkt.", 0) == 0 && module.pkt_var != "pkt") {
      locs.insert(module.pkt_var + name.substr(3));
    }
  }
  return locs;
}

struct SideScore {
  std::map<int, double> line_score;
  std::map<int, int> line_dist;            // min dependence distance
  std::map<int, std::set<std::string>> line_why;
};

/// Score candidate lines on one side's module/PDG: multi-source BFS from
/// anchor nodes (statements mentioning a changed variable or constant),
/// node score 1/(1+dist) plus kind-specific boosts, collapsed to lines.
void score_side(const RuleDelta& delta, const pipeline::PipelineResult& res,
                const std::set<int>& candidate_lines,
                const std::set<std::string>& changed_locs,
                const std::set<std::int64_t>& changed_consts,
                const std::set<std::string>& changed_state,
                SideScore& out) {
  const ir::Cfg& cfg = res.module->body;
  const auto nodes = cfg.real_nodes();

  const auto mentions_changed = [&](const ir::Instr& n) {
    for (const auto& u : n.uses()) {
      if (changed_locs.count(u) != 0) return true;
    }
    for (const auto& d : n.defs()) {
      if (changed_locs.count(d) != 0) return true;
    }
    return false;
  };
  const auto has_changed_const = [&](const ir::Instr& n) {
    if (changed_consts.empty()) return false;
    for (const auto v : instr_ints(n)) {
      if (changed_consts.count(v) != 0) return true;
    }
    return false;
  };

  std::vector<int> anchors;
  for (const int id : nodes) {
    const auto& n = cfg.node(id);
    if (n.loc.line <= 0 || candidate_lines.count(n.loc.line) == 0) continue;
    if (mentions_changed(n) || has_changed_const(n)) anchors.push_back(id);
  }
  if (anchors.empty()) {
    // Nothing mentions the changed terms directly (folded away): fall
    // back to every statement on a candidate line.
    for (const int id : nodes) {
      if (cfg.node(id).loc.line > 0 &&
          candidate_lines.count(cfg.node(id).loc.line) != 0) {
        anchors.push_back(id);
      }
    }
  }
  if (anchors.empty()) return;

  // Undirected dependence adjacency (data + control, both directions).
  std::map<int, std::set<int>> adj;
  for (const int id : nodes) {
    for (const int d : res.pdg->data_deps(id)) {
      adj[id].insert(d);
      adj[d].insert(id);
    }
    for (const int d : res.pdg->control_deps(id)) {
      adj[id].insert(d);
      adj[d].insert(id);
    }
  }

  constexpr int kMaxDist = 6;
  std::map<int, int> dist;
  std::deque<int> queue;
  for (const int a : anchors) {
    dist[a] = 0;
    queue.push_back(a);
  }
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    const int d = dist[n];
    if (d >= kMaxDist) continue;
    const auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const int m : it->second) {
      if (dist.count(m) == 0) {
        dist[m] = d + 1;
        queue.push_back(m);
      }
    }
  }

  for (const auto& [id, d] : dist) {
    const auto& n = cfg.node(id);
    if (n.loc.line <= 0 || candidate_lines.count(n.loc.line) == 0) continue;
    double score = 1.0 / (1.0 + d);
    std::set<std::string> why;
    if (d == 0) {
      why.insert("mentions-changed-term");
    } else {
      why.insert("dep-distance=" + std::to_string(d));
    }
    if (delta.guard_changed && n.kind == ir::InstrKind::kBranch) {
      score += 0.5;
      why.insert("guard-branch");
    }
    if (delta.state_changed) {
      for (const auto& def : n.defs()) {
        if (changed_state.count(def) != 0) {
          score += 0.75;
          why.insert("state-write");
          break;
        }
      }
    }
    if (has_changed_const(n)) {
      score += 1.0;
      why.insert("changed-constant");
    }
    auto& best = out.line_score[n.loc.line];
    if (score > best) best = score;
    const auto dit = out.line_dist.find(n.loc.line);
    if (dit == out.line_dist.end() || d < dit->second) {
      out.line_dist[n.loc.line] = d;
    }
    out.line_why[n.loc.line].insert(why.begin(), why.end());
  }
}

std::set<int> all_prov_lines(const obs::ModelProvenance& prov) {
  std::set<int> lines;
  for (const auto& r : prov.rules) lines.insert(r.lines.begin(), r.lines.end());
  return lines;
}

}  // namespace

std::vector<Suspect> localize(const RuleDelta& delta,
                              const pipeline::PipelineResult& old_res,
                              const pipeline::PipelineResult& new_res,
                              int max_suspects) {
  // Changed terms -> variables and constants.
  std::map<std::string, symex::VarClass> vars;
  std::set<std::int64_t> consts;
  for (const auto& t : delta.old_terms) {
    symex::collect_vars(t, vars);
    collect_const_ints(t, consts);
  }
  for (const auto& t : delta.new_terms) {
    symex::collect_vars(t, vars);
    collect_const_ints(t, consts);
  }
  std::set<std::string> changed_state(delta.changed_state.begin(),
                                      delta.changed_state.end());

  // Candidate lines from provenance: lines both diverging rules
  // executed, plus — the strongest signal — lines only one side did.
  std::set<int> old_lines, new_lines;
  if (delta.old_entry >= 0 &&
      static_cast<std::size_t>(delta.old_entry) <
          old_res.provenance.rules.size()) {
    const auto& l = old_res.provenance.rules[
        static_cast<std::size_t>(delta.old_entry)].lines;
    old_lines.insert(l.begin(), l.end());
  }
  if (delta.new_entry >= 0 &&
      static_cast<std::size_t>(delta.new_entry) <
          new_res.provenance.rules.size()) {
    const auto& l = new_res.provenance.rules[
        static_cast<std::size_t>(delta.new_entry)].lines;
    new_lines.insert(l.begin(), l.end());
  }

  std::set<int> candidates, diverging;
  if (delta.old_entry >= 0 && delta.new_entry >= 0) {
    candidates = old_lines;
    candidates.insert(new_lines.begin(), new_lines.end());
    for (const int l : candidates) {
      if (old_lines.count(l) == 0 || new_lines.count(l) == 0) {
        diverging.insert(l);
      }
    }
  } else if (delta.new_entry >= 0) {
    candidates = new_lines;
    const auto seen = all_prov_lines(old_res.provenance);
    for (const int l : candidates) {
      if (seen.count(l) == 0) diverging.insert(l);
    }
  } else {
    candidates = old_lines;
    const auto seen = all_prov_lines(new_res.provenance);
    for (const int l : candidates) {
      if (seen.count(l) == 0) diverging.insert(l);
    }
  }
  if (candidates.empty()) return {};

  const auto changed_locs_old = changed_locations(vars, *old_res.module);
  const auto changed_locs_new = changed_locations(vars, *new_res.module);

  SideScore scores;
  if (delta.old_entry >= 0) {
    score_side(delta, old_res, candidates, changed_locs_old, consts,
               changed_state, scores);
  }
  if (delta.new_entry >= 0) {
    score_side(delta, new_res, candidates, changed_locs_new, consts,
               changed_state, scores);
  }

  // Lines where the two paths diverged outrank dependence neighbors.
  for (const int l : diverging) {
    scores.line_score[l] += 1.0;
    scores.line_why[l].insert("diverging-line");
    if (scores.line_dist.count(l) == 0) scores.line_dist[l] = -1;
  }

  std::vector<Suspect> out;
  for (const auto& [line, score] : scores.line_score) {
    Suspect s;
    s.line = line;
    s.score = score;
    const auto dit = scores.line_dist.find(line);
    s.distance = dit == scores.line_dist.end() ? -1 : dit->second;
    std::string why;
    for (const auto& tag : scores.line_why[line]) {
      if (!why.empty()) why += "+";
      why += tag;
    }
    s.why = std::move(why);
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(), [](const Suspect& a,
                                              const Suspect& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.line < b.line;
  });
  if (max_suspects >= 0 && out.size() > static_cast<std::size_t>(max_suspects)) {
    out.resize(static_cast<std::size_t>(max_suspects));
  }
  return out;
}

}  // namespace nfactor::diff
