// nf-diff driver (docs/diffing.md): synthesize both NF sources in one
// process (sharing the expression interner, so structural fingerprints
// are comparable across the two models), match rules per configuration
// table, classify the surviving deltas, localize each one to suspect
// source lines, and optionally search for an oracle-validated repair.
//
// The JSON export (`nfactor-diff-v1`) contains only deterministic data
// — model structure, rendered expressions, provenance-derived suspect
// lines — and is byte-identical across `--jobs` widths (the models and
// provenance cores themselves are; the differ adds nothing
// schedule-dependent).
#pragma once

#include <string>
#include <vector>

#include "diff/classifier.h"
#include "diff/matcher.h"
#include "diff/repair.h"
#include "nfactor/pipeline.h"

namespace nfactor::diff {

struct DiffOptions {
  /// Pipeline options used for both sides. Defaults to CLI parity:
  /// normalization + simplify with config folding on.
  pipeline::PipelineOptions pipeline;
  bool localize = true;
  int max_suspects = 3;
  bool repair = false;
  int repair_max_candidates = 64;
  int oracle_packets = 100;
  std::uint64_t packet_seed = 1;

  DiffOptions() {
    pipeline.simplify.enabled = true;
    pipeline.simplify.fold_config = true;
  }
};

/// One configuration table's reported differences.
struct TableDiff {
  std::string config;  ///< rendered config_key ("" = any config)
  std::size_t equivalent_pairs = 0;  ///< matched rules (not reported)
  std::vector<RuleDelta> deltas;
};

struct ModelDiff {
  std::vector<TableDiff> tables;  ///< only tables with deltas
  std::size_t equivalent_pairs = 0;
  std::size_t solver_queries = 0;
  /// Variable-category drift between the two models.
  std::vector<std::string> ois_only_old, ois_only_new;
  std::vector<std::string> cfg_only_old, cfg_only_new;

  bool equivalent() const { return tables.empty(); }
  std::size_t delta_count() const {
    std::size_t n = 0;
    for (const auto& t : tables) n += t.deltas.size();
    return n;
  }
};

/// Pure model-level diff (no localization): match + classify.
ModelDiff diff_models(const model::Model& old_model,
                      const model::Model& new_model,
                      const obs::ModelProvenance* old_prov = nullptr,
                      const obs::ModelProvenance* new_prov = nullptr);

struct DiffResult {
  std::string old_name, new_name;
  pipeline::PipelineResult old_res, new_res;
  ModelDiff diff;
  RepairOutcome repair;

  bool equivalent() const { return diff.equivalent(); }
  /// Either side's SE degraded — the diff may be partial.
  bool degraded() const { return old_res.degraded() || new_res.degraded(); }
};

/// Full pipeline: synthesize old and new, diff, localize, (optionally)
/// repair. Throws lang::FrontendError on parse/sema failure.
DiffResult diff_sources(const std::string& old_source,
                        const std::string& old_name,
                        const std::string& new_source,
                        const std::string& new_name,
                        const DiffOptions& opts = {});

/// Human-readable report.
std::string to_text(const DiffResult& r);

/// Deterministic `nfactor-diff-v1` JSON (schema in docs/diffing.md).
std::string to_json(const DiffResult& r);

}  // namespace nfactor::diff
