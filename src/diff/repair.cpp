#include "diff/repair.h"

#include <algorithm>
#include <map>
#include <set>

#include "diff/matcher.h"
#include "fuzz/oracle.h"
#include "runtime/interp.h"
#include "runtime/value.h"

namespace nfactor::diff {

namespace {

void collect_const_ints(const symex::SymRef& e, std::set<std::int64_t>& out) {
  if (!e) return;
  if (e->kind == symex::SymKind::kConstInt) out.insert(e->int_val);
  for (const auto& op : e->operands) collect_const_ints(op, out);
  for (const auto& [name, f] : e->fields) collect_const_ints(f, out);
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += "\n";
  }
  return out;
}

/// One candidate patch, in the order the search tries them.
struct Candidate {
  fuzz::FaultClass cls;
  int line = 0;
  std::string source;
  std::string description;
};

/// Concrete differential validation: run both programs' runtimes over
/// the oracle's packet batch; outputs and final output-impacting state
/// must agree packet-for-packet.
bool runtimes_agree(const pipeline::PipelineResult& ref,
                    const pipeline::PipelineResult& cand,
                    const std::vector<netsim::Packet>& packets) {
  runtime::Interpreter ri(*ref.module);
  runtime::Interpreter ci(*cand.module);
  ri.reset();
  ci.reset();
  for (const auto& p : packets) {
    runtime::Output ro, co;
    try {
      ro = ri.process(p);
      co = ci.process(p);
    } catch (const std::exception&) {
      return false;
    }
    if (ro.sent != co.sent) return false;
  }
  std::set<std::string> ois = ref.cats.ois_vars;
  ois.insert(cand.cats.ois_vars.begin(), cand.cats.ois_vars.end());
  for (const auto& name : ois) {
    const runtime::Value* rv = ri.global(name);
    const runtime::Value* cv = ci.global(name);
    if ((rv == nullptr) != (cv == nullptr)) return false;
    if (rv != nullptr && runtime::to_string(*rv) != runtime::to_string(*cv)) {
      return false;
    }
  }
  return true;
}

}  // namespace

RepairOutcome repair_search(const pipeline::PipelineResult& ref_res,
                            const std::string& ref_source,
                            const std::string& buggy_source,
                            const std::string& buggy_name,
                            const std::vector<RuleDelta>& deltas,
                            const RepairOptions& opts) {
  RepairOutcome out;
  out.attempted = true;

  // Rank suspect lines across all deltas by their best score.
  std::map<int, double> line_best;
  for (const auto& d : deltas) {
    for (const auto& s : d.suspects) {
      auto& best = line_best[s.line];
      if (s.score > best) best = s.score;
    }
  }
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(line_best.size());
  for (const auto& [line, score] : line_best) ranked.push_back({score, line});
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  if (ranked.size() > static_cast<std::size_t>(std::max(0, opts.max_suspects))) {
    ranked.resize(static_cast<std::size_t>(opts.max_suspects));
  }
  if (ranked.empty()) {
    out.description = "no suspect lines to patch";
    return out;
  }

  // Replacement constants harvested from the reference side of the diff.
  std::set<std::int64_t> ref_consts;
  for (const auto& d : deltas) {
    for (const auto& t : d.old_terms) collect_const_ints(t, ref_consts);
  }

  const auto const_sites =
      fuzz::mutation_sites(buggy_source, fuzz::FaultClass::kWrongConstant);
  const auto guard_sites =
      fuzz::mutation_sites(buggy_source, fuzz::FaultClass::kInvertedGuard);
  const auto ref_const_sites =
      fuzz::mutation_sites(ref_source, fuzz::FaultClass::kWrongConstant);

  const auto buggy_lines = split_lines(buggy_source);
  const auto ref_lines = split_lines(ref_source);
  const bool line_aligned = buggy_lines.size() == ref_lines.size();

  std::vector<Candidate> candidates;
  const auto push = [&](fuzz::FaultClass cls, int line, std::string src,
                        std::string desc) {
    candidates.push_back({cls, line, std::move(src), std::move(desc)});
  };

  for (const auto& [score, line] : ranked) {
    // 1. Wrong constant, reference-aligned: the Nth literal on this line
    // replaced by the reference source's Nth literal on the same line.
    std::vector<const fuzz::MutationSite*> here, ref_here;
    for (const auto& s : const_sites) {
      if (s.line == line) here.push_back(&s);
    }
    for (const auto& s : ref_const_sites) {
      if (s.line == line) ref_here.push_back(&s);
    }
    if (here.size() == ref_here.size()) {
      for (std::size_t i = 0; i < here.size(); ++i) {
        if (here[i]->value == ref_here[i]->value) continue;
        push(fuzz::FaultClass::kWrongConstant, line,
             fuzz::replace_constant(buggy_source, *here[i],
                                    ref_here[i]->value),
             "replaced " + std::to_string(here[i]->value) + " with " +
                 std::to_string(ref_here[i]->value) + " at line " +
                 std::to_string(line));
      }
    }
    // 2. Inverted guard: re-invert the if-condition on this line.
    for (const auto& s : guard_sites) {
      if (s.line != line) continue;
      push(fuzz::FaultClass::kInvertedGuard, line,
           fuzz::invert_guard(buggy_source, s),
           "inverted the if-guard at line " + std::to_string(line));
    }
    // 3. Wrong constant, diff-harvested: constants appearing in the
    // reference model's side of the changed terms.
    for (const auto* s : here) {
      for (const auto v : ref_consts) {
        if (v == s->value) continue;
        push(fuzz::FaultClass::kWrongConstant, line,
             fuzz::replace_constant(buggy_source, *s, v),
             "replaced " + std::to_string(s->value) + " with " +
                 std::to_string(v) + " at line " + std::to_string(line));
      }
    }
    // 4. Missing state update (last resort, needs line-aligned reference
    // source): restore the reference's text on this line.
    if (line_aligned && line >= 1 &&
        static_cast<std::size_t>(line) <= buggy_lines.size() &&
        buggy_lines[static_cast<std::size_t>(line - 1)] !=
            ref_lines[static_cast<std::size_t>(line - 1)]) {
      auto patched = buggy_lines;
      patched[static_cast<std::size_t>(line - 1)] =
          ref_lines[static_cast<std::size_t>(line - 1)];
      push(fuzz::FaultClass::kMissingStateUpdate, line, join_lines(patched),
           "restored the reference statement at line " + std::to_string(line));
    }
  }

  // Oracle packet batch shared by every validation.
  fuzz::OracleOptions oopts;
  oopts.packets = opts.oracle_packets;
  oopts.packet_seed = opts.packet_seed;
  const fuzz::DifferentialOracle oracle(oopts);
  const auto packets = oracle.packet_batch();

  std::set<std::string> tried;
  for (const auto& cand : candidates) {
    if (out.candidates_tried >= opts.max_candidates) break;
    if (cand.source == buggy_source) continue;
    if (!tried.insert(cand.source).second) continue;
    ++out.candidates_tried;

    pipeline::PipelineResult res;
    try {
      res = pipeline::run_source(cand.source, buggy_name, opts.pipeline);
    } catch (const std::exception&) {
      continue;
    }
    if (res.degraded()) continue;
    const auto match = match_models(ref_res.model, res.model,
                                    &ref_res.provenance, &res.provenance);
    if (!match.models_equivalent()) continue;
    if (!runtimes_agree(ref_res, res, packets)) continue;

    out.repaired = true;
    out.cls = cand.cls;
    out.line = cand.line;
    out.description = cand.description;
    out.patched_source = cand.source;
    return out;
  }
  out.description = "no validated patch within budget (" +
                    std::to_string(out.candidates_tried) + " tried)";
  return out;
}

}  // namespace nfactor::diff
