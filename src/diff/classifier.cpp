#include "diff/classifier.h"

#include <set>

namespace nfactor::diff {

namespace {

bool is_true_const(const symex::SymRef& e) {
  return e->kind == symex::SymKind::kConstBool && e->bool_val;
}

std::vector<symex::SymRef> guard_of(const model::ModelEntry& e) {
  std::vector<symex::SymRef> g;
  for (const auto& c : e.flow_match) {
    if (!is_true_const(c)) g.push_back(c);
  }
  for (const auto& c : e.state_match) {
    if (!is_true_const(c)) g.push_back(c);
  }
  return g;
}

/// Conjuncts of `a` with no struct_eq counterpart in `b`.
std::vector<symex::SymRef> only_in(const std::vector<symex::SymRef>& a,
                                   const std::vector<symex::SymRef>& b) {
  std::vector<symex::SymRef> out;
  for (const auto& ca : a) {
    bool found = false;
    for (const auto& cb : b) {
      if (symex::struct_eq(ca, cb)) {
        found = true;
        break;
      }
    }
    if (!found) {
      bool dup = false;
      for (const auto& prev : out) {
        if (symex::struct_eq(prev, ca)) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(ca);
    }
  }
  return out;
}

void append_terms(std::vector<symex::SymRef>& terms,
                  const std::vector<symex::SymRef>& add) {
  terms.insert(terms.end(), add.begin(), add.end());
}

/// Full guard + action term set of one entry (added/removed deltas).
std::vector<symex::SymRef> all_terms(const model::ModelEntry& e) {
  std::vector<symex::SymRef> t = guard_of(e);
  for (const auto& send : e.flow_action) {
    if (send.port) t.push_back(send.port);
    for (const auto& [field, val] : send.rewrites) t.push_back(val);
  }
  for (const auto& [name, val] : e.state_action) t.push_back(val);
  return t;
}

}  // namespace

std::string to_string(DeltaKind k) {
  switch (k) {
    case DeltaKind::kAdded: return "added";
    case DeltaKind::kRemoved: return "removed";
    case DeltaKind::kGuardChanged: return "guard-changed";
    case DeltaKind::kActionChanged: return "action-changed";
    case DeltaKind::kStateChanged: return "state-update-changed";
  }
  return "?";
}

RuleDelta classify_pair(const model::Model& old_model, int old_entry,
                        const model::Model& new_model, int new_entry) {
  RuleDelta d;
  d.old_entry = old_entry;
  d.new_entry = new_entry;
  const auto& oe = old_model.entries[static_cast<std::size_t>(old_entry)];
  const auto& ne = new_model.entries[static_cast<std::size_t>(new_entry)];

  // Guard: symmetric difference of conjuncts.
  const auto og = guard_of(oe);
  const auto ng = guard_of(ne);
  d.old_only_guard = only_in(og, ng);
  d.new_only_guard = only_in(ng, og);
  d.guard_changed = !d.old_only_guard.empty() || !d.new_only_guard.empty();
  append_terms(d.old_terms, d.old_only_guard);
  append_terms(d.new_terms, d.new_only_guard);

  // Forwarding action.
  d.send_count_changed = oe.flow_action.size() != ne.flow_action.size();
  const std::size_t sends =
      std::min(oe.flow_action.size(), ne.flow_action.size());
  for (std::size_t i = 0; i < sends; ++i) {
    const auto& sa = oe.flow_action[i];
    const auto& sb = ne.flow_action[i];
    if (!symex::struct_eq(sa.port, sb.port)) {
      d.port_changed = true;
      if (sa.port) d.old_terms.push_back(sa.port);
      if (sb.port) d.new_terms.push_back(sb.port);
    }
    std::set<std::string> fields;
    for (const auto& [f, v] : sa.rewrites) fields.insert(f);
    for (const auto& [f, v] : sb.rewrites) fields.insert(f);
    for (const auto& f : fields) {
      const auto ia = sa.rewrites.find(f);
      const auto ib = sb.rewrites.find(f);
      const bool both = ia != sa.rewrites.end() && ib != sb.rewrites.end();
      if (both && symex::struct_eq(ia->second, ib->second)) continue;
      d.changed_fields.push_back(f);
      if (ia != sa.rewrites.end()) d.old_terms.push_back(ia->second);
      if (ib != sb.rewrites.end()) d.new_terms.push_back(ib->second);
    }
  }
  if (d.send_count_changed) {
    for (std::size_t i = sends; i < oe.flow_action.size(); ++i) {
      if (oe.flow_action[i].port) d.old_terms.push_back(oe.flow_action[i].port);
      for (const auto& [f, v] : oe.flow_action[i].rewrites) {
        d.old_terms.push_back(v);
      }
    }
    for (std::size_t i = sends; i < ne.flow_action.size(); ++i) {
      if (ne.flow_action[i].port) d.new_terms.push_back(ne.flow_action[i].port);
      for (const auto& [f, v] : ne.flow_action[i].rewrites) {
        d.new_terms.push_back(v);
      }
    }
  }
  d.action_changed = d.send_count_changed || d.port_changed ||
                     !d.changed_fields.empty();

  // State update.
  std::set<std::string> state_vars;
  for (const auto& [n, v] : oe.state_action) state_vars.insert(n);
  for (const auto& [n, v] : ne.state_action) state_vars.insert(n);
  for (const auto& n : state_vars) {
    const auto ia = oe.state_action.find(n);
    const auto ib = ne.state_action.find(n);
    const bool both = ia != oe.state_action.end() && ib != ne.state_action.end();
    if (both && symex::struct_eq(ia->second, ib->second)) continue;
    d.changed_state.push_back(n);
    if (ia != oe.state_action.end()) d.old_terms.push_back(ia->second);
    if (ib != ne.state_action.end()) d.new_terms.push_back(ib->second);
  }
  d.state_changed = !d.changed_state.empty();

  if (d.guard_changed) {
    d.kind = DeltaKind::kGuardChanged;
  } else if (d.action_changed) {
    d.kind = DeltaKind::kActionChanged;
  } else if (d.state_changed) {
    d.kind = DeltaKind::kStateChanged;
  } else {
    // Defensive: a pair the matcher couldn't prove equivalent but whose
    // parts all compare equal structurally — report as guard-changed
    // rather than silently dropping it.
    d.kind = DeltaKind::kGuardChanged;
    d.guard_changed = true;
  }
  return d;
}

RuleDelta classify_added(const model::Model& new_model, int new_entry) {
  RuleDelta d;
  d.kind = DeltaKind::kAdded;
  d.new_entry = new_entry;
  d.new_terms =
      all_terms(new_model.entries[static_cast<std::size_t>(new_entry)]);
  return d;
}

RuleDelta classify_removed(const model::Model& old_model, int old_entry) {
  RuleDelta d;
  d.kind = DeltaKind::kRemoved;
  d.old_entry = old_entry;
  d.old_terms =
      all_terms(old_model.entries[static_cast<std::size_t>(old_entry)]);
  return d;
}

}  // namespace nfactor::diff
