// Delta classification for the semantic model differ (docs/diffing.md).
// Once the matcher has paired rules across the two models, each
// still-differing pair (and each unpaired rule) becomes one RuleDelta
// with a primary kind and detail flags describing exactly which parts
// of the rule moved: guard conjuncts, forwarding action, state update.
#pragma once

#include <string>
#include <vector>

#include "model/model.h"
#include "symex/expr.h"

namespace nfactor::diff {

enum class DeltaKind : std::uint8_t {
  kAdded,          ///< rule exists only in the new model
  kRemoved,        ///< rule exists only in the old model
  kGuardChanged,   ///< paired rule, match condition differs
  kActionChanged,  ///< paired rule, forwarding action differs
  kStateChanged,   ///< paired rule, state update differs
};

std::string to_string(DeltaKind k);

/// One localization suspect: a source line ranked by dependence
/// distance to the delta's changed terms.
struct Suspect {
  int line = 0;
  int distance = -1;  ///< min dependence-edge distance (-1 = no anchor path)
  double score = 0;
  std::string why;    ///< '+'-joined evidence tags
};

/// One reported difference between the two models.
struct RuleDelta {
  DeltaKind kind = DeltaKind::kAdded;
  int old_entry = -1;  ///< index into the old model's entries (-1 = none)
  int new_entry = -1;  ///< index into the new model's entries (-1 = none)

  // Detail flags (a paired rule can differ in several parts at once;
  // `kind` is the highest-precedence one: guard > action > state).
  bool guard_changed = false;
  bool action_changed = false;
  bool state_changed = false;

  /// Guard conjuncts present on only one side (symmetric difference of
  /// flow/state-match fingerprint sets; const-true conjuncts ignored).
  std::vector<symex::SymRef> old_only_guard;
  std::vector<symex::SymRef> new_only_guard;
  /// Packet fields whose rewrite expressions differ (or sends/ports).
  std::vector<std::string> changed_fields;
  /// State variables whose update expressions differ.
  std::vector<std::string> changed_state;
  bool port_changed = false;
  bool send_count_changed = false;

  /// Every differing expression, per side — the changed terms the
  /// localizer anchors on and the repair stage harvests constants from.
  /// For added/removed rules this is the single side's full guard+action.
  std::vector<symex::SymRef> old_terms;
  std::vector<symex::SymRef> new_terms;

  /// Ranked fault-localization output (filled by diff::localize).
  std::vector<Suspect> suspects;
};

/// Classify a paired (old, new) rule that the matcher found
/// non-equivalent. Fills kind, flags, changed-term lists.
RuleDelta classify_pair(const model::Model& old_model, int old_entry,
                        const model::Model& new_model, int new_entry);

/// Deltas for unpaired rules.
RuleDelta classify_added(const model::Model& new_model, int new_entry);
RuleDelta classify_removed(const model::Model& old_model, int old_entry);

}  // namespace nfactor::diff
