#include "diff/matcher.h"

#include <algorithm>
#include <map>
#include <set>

namespace nfactor::diff {

namespace {

bool is_true_const(const symex::SymRef& e) {
  return e->kind == symex::SymKind::kConstBool && e->bool_val;
}

/// Guard conjunction of an entry: flow + state match, const-true dropped.
std::vector<symex::SymRef> guard_of(const model::ModelEntry& e) {
  std::vector<symex::SymRef> g;
  g.reserve(e.flow_match.size() + e.state_match.size());
  for (const auto& c : e.flow_match) {
    if (!is_true_const(c)) g.push_back(c);
  }
  for (const auto& c : e.state_match) {
    if (!is_true_const(c)) g.push_back(c);
  }
  return g;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kSep = 0x9e3779b97f4a7c15ull;

/// Phase-1 signature: guard fingerprints (sorted, deduplicated) plus the
/// action rendered as a fingerprint sequence. Equal signatures mean the
/// rules are structurally identical up to conjunct order.
std::vector<std::uint64_t> exact_signature(const model::ModelEntry& e) {
  std::vector<std::uint64_t> sig;
  for (const auto& c : guard_of(e)) sig.push_back(c->fp);
  std::sort(sig.begin(), sig.end());
  sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  sig.push_back(kSep);
  for (const auto& send : e.flow_action) {
    sig.push_back(send.port ? send.port->fp : 0);
    for (const auto& [field, val] : send.rewrites) {
      sig.push_back(fnv1a(field));
      sig.push_back(val->fp);
    }
    sig.push_back(kSep);
  }
  sig.push_back(kSep);
  for (const auto& [name, val] : e.state_action) {
    sig.push_back(fnv1a(name));
    sig.push_back(val->fp);
  }
  return sig;
}

double jaccard(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 0;
  std::size_t inter = 0;
  std::size_t i = 0, j = 0;  // both sorted (RuleProvenance::lines)
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0 : static_cast<double>(inter) / static_cast<double>(uni);
}

template <typename K, typename V>
double key_overlap(const std::map<K, V>& a, const std::map<K, V>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0;
  for (const auto& [k, v] : a) inter += b.count(k);
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Phase-3 pairing similarity. Provenance-line overlap dominates: a
/// single edited statement leaves the two paths executing nearly the
/// same lines.
double pair_score(const model::ModelEntry& a, const model::ModelEntry& b,
                  const std::vector<int>* lines_a,
                  const std::vector<int>* lines_b) {
  double s = 0;
  if (lines_a != nullptr && lines_b != nullptr) {
    s += 4.0 * jaccard(*lines_a, *lines_b);
  }
  const auto ga = guard_of(a);
  const auto gb = guard_of(b);
  std::set<std::uint64_t> fps_a;
  for (const auto& c : ga) fps_a.insert(c->fp);
  std::size_t shared = 0;
  std::set<std::uint64_t> fps_b;
  for (const auto& c : gb) {
    if (fps_b.insert(c->fp).second && fps_a.count(c->fp) != 0) ++shared;
  }
  const std::size_t denom = std::max<std::size_t>(
      1, std::max(fps_a.size(), fps_b.size()));
  s += 2.0 * static_cast<double>(shared) / static_cast<double>(denom);
  if (a.flow_action.size() == b.flow_action.size()) {
    s += 0.5;
    for (std::size_t i = 0; i < a.flow_action.size(); ++i) {
      if (symex::struct_eq(a.flow_action[i].port, b.flow_action[i].port)) {
        s += 0.5;
      }
      s += 0.5 * key_overlap(a.flow_action[i].rewrites,
                             b.flow_action[i].rewrites);
    }
  }
  s += 0.5 * key_overlap(a.state_action, b.state_action);
  return s;
}

const std::vector<int>* prov_lines(const obs::ModelProvenance* prov, int entry) {
  if (prov == nullptr) return nullptr;
  const auto idx = static_cast<std::size_t>(entry);
  if (idx >= prov->rules.size()) return nullptr;
  return &prov->rules[idx].lines;
}

}  // namespace

bool guard_implies(symex::Solver& solver,
                   const std::vector<symex::SymRef>& a,
                   const std::vector<symex::SymRef>& b) {
  for (const auto& conjunct : b) {
    if (is_true_const(conjunct)) continue;
    bool trivially = false;
    for (const auto& have : a) {
      if (symex::struct_eq(have, conjunct)) {
        trivially = true;
        break;
      }
    }
    if (trivially) continue;
    std::vector<symex::SymRef> query = a;
    query.push_back(symex::negate(conjunct));
    if (solver.check(query) != symex::SatResult::kUnsat) return false;
  }
  return true;
}

bool guards_equivalent(symex::Solver& solver,
                       const std::vector<symex::SymRef>& a,
                       const std::vector<symex::SymRef>& b) {
  return guard_implies(solver, a, b) && guard_implies(solver, b, a);
}

bool actions_equal(const model::ModelEntry& a, const model::ModelEntry& b) {
  if (a.flow_action.size() != b.flow_action.size()) return false;
  for (std::size_t i = 0; i < a.flow_action.size(); ++i) {
    const auto& sa = a.flow_action[i];
    const auto& sb = b.flow_action[i];
    if (!symex::struct_eq(sa.port, sb.port)) return false;
    if (sa.rewrites.size() != sb.rewrites.size()) return false;
    for (const auto& [field, val] : sa.rewrites) {
      const auto it = sb.rewrites.find(field);
      if (it == sb.rewrites.end() || !symex::struct_eq(val, it->second)) {
        return false;
      }
    }
  }
  if (a.state_action.size() != b.state_action.size()) return false;
  for (const auto& [name, val] : a.state_action) {
    const auto it = b.state_action.find(name);
    if (it == b.state_action.end() || !symex::struct_eq(val, it->second)) {
      return false;
    }
  }
  return true;
}

ModelMatch match_models(const model::Model& old_model,
                        const model::Model& new_model,
                        const obs::ModelProvenance* old_prov,
                        const obs::ModelProvenance* new_prov) {
  ModelMatch out;

  // Group both sides' entries per configuration table.
  struct Group {
    std::string label;
    std::vector<int> old_entries, new_entries;
  };
  std::map<std::vector<std::uint64_t>, Group> groups;
  for (std::size_t i = 0; i < old_model.entries.size(); ++i) {
    auto& g = groups[old_model.entries[i].config_identity()];
    if (g.label.empty()) g.label = old_model.entries[i].config_key();
    g.old_entries.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < new_model.entries.size(); ++i) {
    auto& g = groups[new_model.entries[i].config_identity()];
    if (g.label.empty()) g.label = new_model.entries[i].config_key();
    g.new_entries.push_back(static_cast<int>(i));
  }

  symex::Solver solver;

  for (auto& [identity, group] : groups) {
    TableMatch tm;
    tm.config_identity = identity;
    tm.config_label = group.label;

    std::vector<bool> old_used(group.old_entries.size(), false);
    std::vector<bool> new_used(group.new_entries.size(), false);

    // Phase 1: exact fingerprint signature, greedy in index order.
    std::map<std::vector<std::uint64_t>, std::vector<std::size_t>> by_sig;
    for (std::size_t j = 0; j < group.new_entries.size(); ++j) {
      by_sig[exact_signature(new_model.entries[
          static_cast<std::size_t>(group.new_entries[j])])].push_back(j);
    }
    for (std::size_t i = 0; i < group.old_entries.size(); ++i) {
      const auto sig = exact_signature(old_model.entries[
          static_cast<std::size_t>(group.old_entries[i])]);
      auto it = by_sig.find(sig);
      if (it == by_sig.end()) continue;
      auto& slots = it->second;
      std::size_t pick = slots.size();
      for (std::size_t k = 0; k < slots.size(); ++k) {
        if (!new_used[slots[k]]) {
          pick = k;
          break;
        }
      }
      if (pick == slots.size()) continue;
      const std::size_t j = slots[pick];
      old_used[i] = true;
      new_used[j] = true;
      tm.equivalent.push_back(
          {group.old_entries[i], group.new_entries[j], true});
    }

    // Phase 2: equal actions + solver-proven guard equivalence.
    for (std::size_t i = 0; i < group.old_entries.size(); ++i) {
      if (old_used[i]) continue;
      const auto& oe = old_model.entries[
          static_cast<std::size_t>(group.old_entries[i])];
      for (std::size_t j = 0; j < group.new_entries.size(); ++j) {
        if (new_used[j]) continue;
        const auto& ne = new_model.entries[
            static_cast<std::size_t>(group.new_entries[j])];
        if (!actions_equal(oe, ne)) continue;
        if (!guards_equivalent(solver, guard_of(oe), guard_of(ne))) continue;
        old_used[i] = true;
        new_used[j] = true;
        tm.equivalent.push_back(
            {group.old_entries[i], group.new_entries[j], false});
        break;
      }
    }

    // Phase 3: greedily pair what remains by similarity, so one edited
    // rule reports as a single changed pair.
    struct Cand {
      double score;
      std::size_t i, j;
    };
    std::vector<Cand> cands;
    for (std::size_t i = 0; i < group.old_entries.size(); ++i) {
      if (old_used[i]) continue;
      const int oi = group.old_entries[i];
      const auto& oe = old_model.entries[static_cast<std::size_t>(oi)];
      for (std::size_t j = 0; j < group.new_entries.size(); ++j) {
        if (new_used[j]) continue;
        const int nj = group.new_entries[j];
        const auto& ne = new_model.entries[static_cast<std::size_t>(nj)];
        const double s = pair_score(oe, ne, prov_lines(old_prov, oi),
                                    prov_lines(new_prov, nj));
        if (s >= 0.75) cands.push_back({s, i, j});
      }
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& a, const Cand& b) {
                       if (a.score != b.score) return a.score > b.score;
                       if (a.i != b.i) return a.i < b.i;
                       return a.j < b.j;
                     });
    for (const auto& c : cands) {
      if (old_used[c.i] || new_used[c.j]) continue;
      old_used[c.i] = true;
      new_used[c.j] = true;
      tm.changed.push_back(
          {group.old_entries[c.i], group.new_entries[c.j], false});
    }

    for (std::size_t i = 0; i < group.old_entries.size(); ++i) {
      if (!old_used[i]) tm.removed.push_back(group.old_entries[i]);
    }
    for (std::size_t j = 0; j < group.new_entries.size(); ++j) {
      if (!new_used[j]) tm.added.push_back(group.new_entries[j]);
    }

    out.equivalent_pairs += tm.equivalent.size();
    out.tables.push_back(std::move(tm));
  }

  std::stable_sort(out.tables.begin(), out.tables.end(),
                   [](const TableMatch& a, const TableMatch& b) {
                     if (a.config_label != b.config_label) {
                       return a.config_label < b.config_label;
                     }
                     return a.config_identity < b.config_identity;
                   });
  out.solver_queries = solver.query_count();
  return out;
}

}  // namespace nfactor::diff
