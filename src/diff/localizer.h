// Dependence-based fault localization (docs/diffing.md). For one
// RuleDelta, candidate source lines come from the synthesis provenance
// of the diverging rules (lines both paths executed, plus the lines
// only one side executed — exactly where the paths diverged). Candidates
// are then ranked by PDG dependence-edge distance from "anchor"
// statements that mention the delta's changed variables or constants,
// with boosts for branch nodes under guard deltas, state-writing nodes
// under state deltas, and statements containing a changed constant.
#pragma once

#include <vector>

#include "diff/classifier.h"
#include "nfactor/pipeline.h"

namespace nfactor::diff {

/// Rank suspect source lines for `delta`. `old_res`/`new_res` are the
/// two synthesis runs the models came from (module + PDG + provenance).
/// Suspect lines refer to the side a rule exists on — for paired deltas
/// the union of both sides (line-aligned sources share numbering).
/// Returns at most `max_suspects` suspects, best first; deterministic.
std::vector<Suspect> localize(const RuleDelta& delta,
                              const pipeline::PipelineResult& old_res,
                              const pipeline::PipelineResult& new_res,
                              int max_suspects = 3);

}  // namespace nfactor::diff
