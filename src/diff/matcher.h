// Rule matching for the semantic model differ (docs/diffing.md). Two
// models' entries are grouped per configuration table
// (ModelEntry::config_identity) and matched in three phases:
//   1. exact    — sorted structural-fingerprint signature of
//                 (guard conjuncts, forwarding action, state update);
//                 interner fingerprints make this a word compare;
//   2. semantic — equal actions + solver-proven guard equivalence
//                 (mutual implication), so cosmetically different but
//                 equivalent rules are matched, not reported;
//   3. paired   — remaining rules are greedily paired by similarity
//                 (provenance-line Jaccard, shared guard conjuncts,
//                 action shape) so a single edited rule shows up as one
//                 changed pair instead of an add + a remove.
// Whatever survives unpaired is an added/removed rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.h"
#include "obs/provenance.h"
#include "symex/solver.h"

namespace nfactor::diff {

struct RulePair {
  int old_entry = -1;
  int new_entry = -1;
  bool exact = false;  ///< phase-1 fingerprint match (else solver-proven)
};

/// Match outcome for one configuration table.
struct TableMatch {
  std::vector<std::uint64_t> config_identity;
  std::string config_label;  ///< rendered config_key (empty = any config)
  std::vector<RulePair> equivalent;  ///< matched, NOT reported in the diff
  std::vector<RulePair> changed;     ///< phase-3 pairs that still differ
  std::vector<int> removed;          ///< old-side entries left unpaired
  std::vector<int> added;            ///< new-side entries left unpaired
};

struct ModelMatch {
  std::vector<TableMatch> tables;  ///< sorted by config_label
  std::size_t equivalent_pairs = 0;
  std::size_t solver_queries = 0;  ///< feasibility checks spent matching

  bool models_equivalent() const {
    for (const auto& t : tables) {
      if (!t.changed.empty() || !t.removed.empty() || !t.added.empty()) {
        return false;
      }
    }
    return true;
  }
};

/// Match the two models' rules. Provenance pointers are optional; when
/// given (rules parallel to entries) phase 3 uses source-line overlap as
/// its primary pairing signal. Deterministic in its inputs.
ModelMatch match_models(const model::Model& old_model,
                        const model::Model& new_model,
                        const obs::ModelProvenance* old_prov = nullptr,
                        const obs::ModelProvenance* new_prov = nullptr);

/// Solver-proven implication: `a` (a conjunction) implies every
/// conjunct of `b`. Sound in one direction only — a `true` answer is a
/// proof, a `false` answer may just be incompleteness (the feasibility
/// checker treats undecided as sat).
bool guard_implies(symex::Solver& solver,
                   const std::vector<symex::SymRef>& a,
                   const std::vector<symex::SymRef>& b);

/// Mutual implication of the two guard conjunctions.
bool guards_equivalent(symex::Solver& solver,
                       const std::vector<symex::SymRef>& a,
                       const std::vector<symex::SymRef>& b);

/// Structural equality of forwarding + state actions.
bool actions_equal(const model::ModelEntry& a, const model::ModelEntry& b);

}  // namespace nfactor::diff
