#include "diff/diff.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "diff/localizer.h"
#include "obs/json.h"

namespace nfactor::diff {

namespace {

std::vector<std::string> set_minus(const std::set<std::string>& a,
                                   const std::set<std::string>& b) {
  std::vector<std::string> out;
  for (const auto& x : a) {
    if (b.count(x) == 0) out.push_back(x);
  }
  return out;
}

std::string fmt_score(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", s);
  return buf;
}

void json_str_array(std::string& out, const std::vector<std::string>& items) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + obs::json_escape(items[i]) + "\"";
  }
  out += "]";
}

std::vector<std::string> render_terms(const std::vector<symex::SymRef>& terms) {
  std::vector<std::string> out;
  out.reserve(terms.size());
  for (const auto& t : terms) out.push_back(symex::to_string(t));
  return out;
}

}  // namespace

ModelDiff diff_models(const model::Model& old_model,
                      const model::Model& new_model,
                      const obs::ModelProvenance* old_prov,
                      const obs::ModelProvenance* new_prov) {
  const ModelMatch match = match_models(old_model, new_model, old_prov,
                                        new_prov);
  ModelDiff out;
  out.equivalent_pairs = match.equivalent_pairs;
  out.solver_queries = match.solver_queries;
  out.ois_only_old = set_minus(old_model.ois_vars, new_model.ois_vars);
  out.ois_only_new = set_minus(new_model.ois_vars, old_model.ois_vars);
  out.cfg_only_old = set_minus(old_model.cfg_vars, new_model.cfg_vars);
  out.cfg_only_new = set_minus(new_model.cfg_vars, old_model.cfg_vars);

  for (const auto& tm : match.tables) {
    if (tm.changed.empty() && tm.removed.empty() && tm.added.empty()) continue;
    TableDiff td;
    td.config = tm.config_label;
    td.equivalent_pairs = tm.equivalent.size();
    for (const auto& pair : tm.changed) {
      td.deltas.push_back(classify_pair(old_model, pair.old_entry, new_model,
                                        pair.new_entry));
    }
    for (const int oe : tm.removed) {
      td.deltas.push_back(classify_removed(old_model, oe));
    }
    for (const int ne : tm.added) {
      td.deltas.push_back(classify_added(new_model, ne));
    }
    out.tables.push_back(std::move(td));
  }
  return out;
}

DiffResult diff_sources(const std::string& old_source,
                        const std::string& old_name,
                        const std::string& new_source,
                        const std::string& new_name,
                        const DiffOptions& opts) {
  DiffResult r;
  r.old_name = old_name;
  r.new_name = new_name;
  r.old_res = pipeline::run_source(old_source, old_name, opts.pipeline);
  r.new_res = pipeline::run_source(new_source, new_name, opts.pipeline);
  r.diff = diff_models(r.old_res.model, r.new_res.model, &r.old_res.provenance,
                       &r.new_res.provenance);

  if (opts.localize) {
    for (auto& table : r.diff.tables) {
      for (auto& delta : table.deltas) {
        delta.suspects = localize(delta, r.old_res, r.new_res,
                                  opts.max_suspects);
      }
    }
  }

  if (opts.repair && !r.diff.equivalent()) {
    std::vector<RuleDelta> deltas;
    for (const auto& table : r.diff.tables) {
      deltas.insert(deltas.end(), table.deltas.begin(), table.deltas.end());
    }
    RepairOptions ropts;
    ropts.pipeline = opts.pipeline;
    ropts.max_suspects = opts.max_suspects;
    ropts.max_candidates = opts.repair_max_candidates;
    ropts.oracle_packets = opts.oracle_packets;
    ropts.packet_seed = opts.packet_seed;
    r.repair = repair_search(r.old_res, old_source, new_source, new_name,
                             deltas, ropts);
  }
  return r;
}

std::string to_text(const DiffResult& r) {
  std::string out;
  out += "nf-diff: old=" + r.old_name + " (" +
         std::to_string(r.old_res.model.entries.size()) + " rules)  new=" +
         r.new_name + " (" + std::to_string(r.new_res.model.entries.size()) +
         " rules)\n";
  if (r.degraded()) {
    out += "warning: symbolic execution degraded on at least one side — the "
           "diff may be partial\n";
  }
  if (r.diff.equivalent()) {
    out += "models are semantically equivalent (" +
           std::to_string(r.diff.equivalent_pairs) + " matched rules, " +
           std::to_string(r.diff.solver_queries) + " solver queries)\n";
    return out;
  }
  out += std::to_string(r.diff.delta_count()) + " difference(s) in " +
         std::to_string(r.diff.tables.size()) + " table(s); " +
         std::to_string(r.diff.equivalent_pairs) +
         " rules matched as equivalent\n";
  for (const auto& v : r.diff.ois_only_old) {
    out += "  state variable only in old model: " + v + "\n";
  }
  for (const auto& v : r.diff.ois_only_new) {
    out += "  state variable only in new model: " + v + "\n";
  }
  for (const auto& table : r.diff.tables) {
    out += "[config " + (table.config.empty() ? "<any>" : table.config) + "]\n";
    for (const auto& d : table.deltas) {
      out += "  " + to_string(d.kind) + ":";
      if (d.old_entry >= 0) out += " old #" + std::to_string(d.old_entry);
      if (d.old_entry >= 0 && d.new_entry >= 0) out += " <->";
      if (d.new_entry >= 0) out += " new #" + std::to_string(d.new_entry);
      out += "\n";
      for (const auto& g : d.old_only_guard) {
        out += "    guard only in old: " + symex::to_string(g) + "\n";
      }
      for (const auto& g : d.new_only_guard) {
        out += "    guard only in new: " + symex::to_string(g) + "\n";
      }
      for (const auto& f : d.changed_fields) {
        out += "    rewrite changed: " + f + "\n";
      }
      for (const auto& s : d.changed_state) {
        out += "    state update changed: " + s + "\n";
      }
      if (d.port_changed) out += "    output port changed\n";
      if (d.send_count_changed) out += "    send count changed\n";
      const std::string& file =
          d.new_entry >= 0 ? r.new_name : r.old_name;
      for (const auto& s : d.suspects) {
        out += "    suspect " + file + ":" + std::to_string(s.line) +
               " (score " + fmt_score(s.score) + ", " + s.why + ")\n";
      }
    }
  }
  if (r.repair.attempted) {
    if (r.repair.repaired) {
      out += "repair: " + std::string(fuzz::to_string(r.repair.cls)) + " — " +
             r.repair.description + " (" +
             std::to_string(r.repair.candidates_tried) +
             " candidate(s) tried); patched model is equivalent to the "
             "reference\n";
    } else {
      out += "repair: failed — " + r.repair.description + "\n";
    }
  }
  return out;
}

std::string to_json(const DiffResult& r) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"nfactor-diff-v1\",\n";
  out += "  \"old\": {\"name\": \"" + obs::json_escape(r.old_name) +
         "\", \"rules\": " + std::to_string(r.old_res.model.entries.size()) +
         ", \"degraded\": " + (r.old_res.degraded() ? "true" : "false") +
         "},\n";
  out += "  \"new\": {\"name\": \"" + obs::json_escape(r.new_name) +
         "\", \"rules\": " + std::to_string(r.new_res.model.entries.size()) +
         ", \"degraded\": " + (r.new_res.degraded() ? "true" : "false") +
         "},\n";
  out += "  \"equivalent\": " + std::string(r.equivalent() ? "true" : "false") +
         ",\n";
  out += "  \"equivalent_pairs\": " + std::to_string(r.diff.equivalent_pairs) +
         ",\n";
  out += "  \"ois_only_old\": ";
  json_str_array(out, r.diff.ois_only_old);
  out += ",\n  \"ois_only_new\": ";
  json_str_array(out, r.diff.ois_only_new);
  out += ",\n  \"cfg_only_old\": ";
  json_str_array(out, r.diff.cfg_only_old);
  out += ",\n  \"cfg_only_new\": ";
  json_str_array(out, r.diff.cfg_only_new);
  out += ",\n  \"tables\": [";
  for (std::size_t t = 0; t < r.diff.tables.size(); ++t) {
    const auto& table = r.diff.tables[t];
    if (t != 0) out += ",";
    out += "\n    {\"config\": \"" + obs::json_escape(table.config) +
           "\", \"equivalent_pairs\": " +
           std::to_string(table.equivalent_pairs) + ", \"deltas\": [";
    for (std::size_t i = 0; i < table.deltas.size(); ++i) {
      const auto& d = table.deltas[i];
      if (i != 0) out += ",";
      out += "\n      {\"kind\": \"" + to_string(d.kind) + "\"";
      out += ", \"old_entry\": " + std::to_string(d.old_entry);
      out += ", \"new_entry\": " + std::to_string(d.new_entry);
      out += ", \"guard_changed\": " +
             std::string(d.guard_changed ? "true" : "false");
      out += ", \"action_changed\": " +
             std::string(d.action_changed ? "true" : "false");
      out += ", \"state_changed\": " +
             std::string(d.state_changed ? "true" : "false");
      out += ",\n       \"old_only_guard\": ";
      json_str_array(out, render_terms(d.old_only_guard));
      out += ", \"new_only_guard\": ";
      json_str_array(out, render_terms(d.new_only_guard));
      out += ",\n       \"changed_fields\": ";
      json_str_array(out, d.changed_fields);
      out += ", \"changed_state\": ";
      json_str_array(out, d.changed_state);
      out += ", \"port_changed\": " +
             std::string(d.port_changed ? "true" : "false");
      out += ", \"send_count_changed\": " +
             std::string(d.send_count_changed ? "true" : "false");
      out += ",\n       \"suspects\": [";
      for (std::size_t s = 0; s < d.suspects.size(); ++s) {
        const auto& sus = d.suspects[s];
        if (s != 0) out += ", ";
        out += "{\"line\": " + std::to_string(sus.line) +
               ", \"distance\": " + std::to_string(sus.distance) +
               ", \"score\": " + fmt_score(sus.score) + ", \"why\": \"" +
               obs::json_escape(sus.why) + "\"}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "\n  ]";
  if (r.repair.attempted) {
    out += ",\n  \"repair\": {\"attempted\": true, \"repaired\": " +
           std::string(r.repair.repaired ? "true" : "false") +
           ", \"candidates_tried\": " +
           std::to_string(r.repair.candidates_tried);
    if (r.repair.repaired) {
      out += ", \"class\": \"" + fuzz::to_string(r.repair.cls) +
             "\", \"line\": " + std::to_string(r.repair.line);
    }
    out += ", \"description\": \"" + obs::json_escape(r.repair.description) +
           "\"}";
  }
  out += "\n}\n";
  return out;
}

}  // namespace nfactor::diff
