// Oracle-validated repair (docs/diffing.md). For the three
// fuzz::mutate fault classes, enumerate candidate patches at the
// top-ranked suspect lines of the semantic diff and validate each by
// re-synthesizing the patched program: a patch is accepted only when
// its model is semantically equivalent to the reference model (matcher
// re-run) AND the patched program agrees with the reference program on
// the differential oracle's concrete packet batch (outputs + final
// output-impacting state). First validated patch wins; the search is
// deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diff/classifier.h"
#include "fuzz/mutate.h"
#include "nfactor/pipeline.h"

namespace nfactor::diff {

struct RepairOptions {
  pipeline::PipelineOptions pipeline;  ///< must mirror the diff's options
  int max_suspects = 3;        ///< suspect lines to try, best first
  int max_candidates = 64;     ///< total patch budget
  int oracle_packets = 100;    ///< concrete packets for validation
  std::uint64_t packet_seed = 1;
};

struct RepairOutcome {
  bool attempted = false;
  bool repaired = false;
  int candidates_tried = 0;
  fuzz::FaultClass cls = fuzz::FaultClass::kWrongConstant;  ///< of the fix
  int line = 0;             ///< patched line
  std::string description;  ///< human-readable account of the patch
  std::string patched_source;  ///< full repaired source (when repaired)
};

/// Search for a patch that makes `buggy_source` equivalent to the
/// reference. `ref_res` is the reference side's completed synthesis run;
/// `deltas` are the diff's rule deltas (suspects already localized).
RepairOutcome repair_search(const pipeline::PipelineResult& ref_res,
                            const std::string& ref_source,
                            const std::string& buggy_source,
                            const std::string& buggy_name,
                            const std::vector<RuleDelta>& deltas,
                            const RepairOptions& opts);

}  // namespace nfactor::diff
