// Stateful header-space-style verification (paper §4 "Network
// Verification", extension 2): each model entry is a transfer function
// T(h, p, s). Chaining NFs composes the transfer functions; reachability
// of the chain's egress is a satisfiability question over the composed
// constraints — decided with the same solver the executor uses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/model.h"
#include "symex/expr.h"

namespace nfactor::verify {

/// One NF instance in a chain. State/config symbols get `prefix` so
/// instances of the same NF keep disjoint state.
struct ChainHop {
  std::string name;
  const model::Model* model = nullptr;
  /// Deployment pins for this hop's configuration, expressed over the
  /// NF's unprefixed config symbols (e.g. INLINE_DROP == 1). Without
  /// pins the query quantifies over all configurations.
  std::vector<symex::SymRef> config;

  /// Ingress port of this hop in the chain topology (-1 = symbolic:
  /// first hop sees the query's pkt.in_port). Port-sensitive NFs
  /// (firewall, NAT) need this pinned for hops after the first.
  int in_port = -1;
};

/// One end-to-end symbolic path through the chain.
struct ChainPath {
  std::vector<int> entry_index;        // chosen entry per hop (-1 = default drop)
  std::vector<symex::SymRef> constraints;  // composed, over ingress symbols
  std::map<std::string, symex::SymRef> egress_fields;  // field -> expr
  bool delivered = false;              // reached the end without a drop
};

struct ReachabilityResult {
  std::vector<ChainPath> delivered;  // feasible end-to-end paths
  std::size_t combinations_checked = 0;
  std::size_t infeasible = 0;
  bool any() const { return !delivered.empty(); }
};

/// Enumerate feasible end-to-end paths (entry combinations) through the
/// chain. `extra_constraints` restricts the ingress header space (e.g.
/// pkt.dport == 80). Bounded by `max_results`.
ReachabilityResult reachable(const std::vector<ChainHop>& chain,
                             const std::vector<symex::SymRef>& extra_constraints = {},
                             std::size_t max_results = 64);

/// Convenience predicate: can any packet satisfying `ingress` traverse
/// the whole chain without being dropped?
bool can_reach_egress(const std::vector<ChainHop>& chain,
                      const std::vector<symex::SymRef>& ingress = {});

}  // namespace nfactor::verify
