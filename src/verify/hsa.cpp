#include "verify/hsa.h"

#include "lang/builtins.h"
#include "symex/solver.h"

namespace nfactor::verify {

namespace {

using symex::SymRef;

/// Per-hop state/config renaming so two hops never share state
/// (symex::prefix_symbols does the walk).
SymRef prefixed(const SymRef& e, const std::string& prefix) {
  return symex::prefix_symbols(e, prefix);
}

}  // namespace

ReachabilityResult reachable(const std::vector<ChainHop>& chain,
                             const std::vector<SymRef>& extra_constraints,
                             std::size_t max_results) {
  ReachabilityResult result;
  symex::Solver solver;

  struct Frame {
    std::size_t hop;
    std::vector<int> entries;
    std::vector<SymRef> constraints;
    std::map<std::string, SymRef> fields;  // current header expr per field
  };

  Frame init;
  init.hop = 0;
  init.constraints = extra_constraints;
  for (const auto& f : lang::packet_fields()) {
    init.fields["pkt." + f.name] = symex::make_var("pkt." + f.name,
                                                   symex::VarClass::kPkt);
  }

  std::vector<Frame> stack = {std::move(init)};
  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();

    if (fr.hop == chain.size()) {
      ChainPath p;
      p.entry_index = fr.entries;
      p.constraints = fr.constraints;
      p.egress_fields = fr.fields;
      p.delivered = true;
      result.delivered.push_back(std::move(p));
      if (result.delivered.size() >= max_results) break;
      continue;
    }

    const ChainHop& hop = chain[fr.hop];
    const std::string prefix = hop.name + "$" + std::to_string(fr.hop) + "$";

    // Deployment config pins apply to every entry of this hop.
    std::vector<SymRef> hop_pins;
    for (const auto& c : hop.config) hop_pins.push_back(prefixed(c, prefix));

    // Chain topology: this hop receives on a known port.
    if (hop.in_port >= 0) {
      fr.fields["pkt.in_port"] = symex::make_int(hop.in_port);
    }

    for (std::size_t ei = 0; ei < hop.model->entries.size(); ++ei) {
      const model::ModelEntry& e = hop.model->entries[ei];
      if (e.is_drop()) continue;  // dropped: never reaches the next hop

      ++result.combinations_checked;
      Frame next = fr;
      next.hop = fr.hop + 1;
      next.entries.push_back(static_cast<int>(ei));
      next.constraints.insert(next.constraints.end(), hop_pins.begin(),
                              hop_pins.end());

      // Entry conditions, with this hop's state prefixed and packet
      // symbols replaced by the incoming header expressions.
      auto land = [&](const SymRef& c) {
        return symex::substitute(prefixed(c, prefix), fr.fields);
      };
      bool trivially_false = false;
      for (const auto& c : e.config_match) {
        const SymRef cc = land(c);
        if (symex::is_const_bool(cc) && !cc->bool_val) trivially_false = true;
        next.constraints.push_back(cc);
      }
      for (const auto& c : e.flow_match) {
        const SymRef cc = land(c);
        if (symex::is_const_bool(cc) && !cc->bool_val) trivially_false = true;
        next.constraints.push_back(cc);
      }
      for (const auto& c : e.state_match) {
        const SymRef cc = land(c);
        if (symex::is_const_bool(cc) && !cc->bool_val) trivially_false = true;
        next.constraints.push_back(cc);
      }
      if (trivially_false ||
          solver.check(next.constraints) == symex::SatResult::kUnsat) {
        ++result.infeasible;
        continue;
      }

      // Transform the header through the first send action.
      const model::SendAction& a = e.flow_action.front();
      for (const auto& [field, expr] : a.rewrites) {
        next.fields["pkt." + field] =
            symex::substitute(prefixed(expr, prefix), fr.fields);
      }
      stack.push_back(std::move(next));
    }
  }
  return result;
}

bool can_reach_egress(const std::vector<ChainHop>& chain,
                      const std::vector<SymRef>& ingress) {
  return reachable(chain, ingress, 1).any();
}

}  // namespace nfactor::verify
