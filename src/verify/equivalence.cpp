#include "verify/equivalence.h"

#include <map>
#include <set>
#include <sstream>

#include "lint/simplify.h"
#include "model/interp.h"
#include "runtime/interp.h"
#include "symex/solver.h"

namespace nfactor::verify {

namespace {

std::string describe_send(const netsim::Packet& p, int port) {
  return netsim::to_string(p) + " @" + std::to_string(port);
}

}  // namespace

DiffResult differential_test(const ir::Module& module,
                             const statealyzer::Result& cats,
                             const model::Model& model,
                             std::span<const netsim::Packet> packets) {
  DiffResult r;
  runtime::Interpreter orig(module);
  model::ModelInterpreter synth(model, model::initial_store(module));

  for (const netsim::Packet& in : packets) {
    ++r.packets;
    const runtime::Output oo = orig.process(in);
    const model::ModelOutput mo = synth.process(in);
    r.original_sent += static_cast<int>(oo.sent.size());
    r.model_sent += static_cast<int>(mo.sent.size());

    bool mismatch = oo.sent.size() != mo.sent.size();
    if (!mismatch) {
      for (std::size_t i = 0; i < oo.sent.size(); ++i) {
        if (!(oo.sent[i].first == mo.sent[i].first) ||
            oo.sent[i].second != mo.sent[i].second) {
          mismatch = true;
          break;
        }
      }
    }
    if (mismatch) {
      ++r.mismatches;
      if (!r.has_first_mismatch) {
        r.has_first_mismatch = true;
        r.first_mismatch_entry = mo.matched_entry;
        r.first_mismatch_packet = netsim::to_string(in);
      }
      if (r.details.size() < 8) {
        std::ostringstream os;
        os << "in=" << netsim::to_string(in) << " original={";
        for (const auto& [p, port] : oo.sent) os << describe_send(p, port) << ' ';
        os << "} model={";
        for (const auto& [p, port] : mo.sent) os << describe_send(p, port) << ' ';
        os << '}';
        r.details.push_back(os.str());
      }
    }
  }

  // Output-impacting state must agree at the end of the stream.
  for (const auto& var : cats.ois_vars) {
    const runtime::Value* ov = orig.global(var);
    const runtime::Value* mv = synth.state(var);
    const bool both = ov != nullptr && mv != nullptr;
    if (!both || !runtime::value_eq(*ov, *mv)) {
      ++r.mismatches;
      if (r.details.size() < 8) {
        r.details.push_back(
            "state '" + var + "' diverged: original=" +
            (ov ? runtime::to_string(*ov) : "<missing>") +
            " model=" + (mv ? runtime::to_string(*mv) : "<missing>"));
      }
    }
  }
  return r;
}

std::string action_signature(const symex::ExecPath& path,
                             const statealyzer::Result& cats) {
  std::ostringstream os;
  os << "sends[";
  for (const auto& s : path.sends) {
    os << "(";
    for (const auto& [f, v] : s.fields) {
      if (f == "__payload") continue;
      // Identity fields don't distinguish actions.
      if (v->kind == symex::SymKind::kVar && v->str_val == "pkt." + f) continue;
      os << f << '=' << v->key() << ';';
    }
    os << ")@" << s.port->key();
  }
  os << "] state[";
  for (const auto& [var, v] : path.final_state) {
    if (!cats.is_ois(var)) continue;
    if (v->kind == symex::SymKind::kVar && v->str_val == var) continue;
    if (v->kind == symex::SymKind::kMapBase && v->str_val == var) continue;
    os << var << '=' << v->key() << ';';
  }
  os << ']';
  return os.str();
}

PathSetComparison compare_action_sets(const std::vector<symex::ExecPath>& a,
                                      const std::vector<symex::ExecPath>& b,
                                      const statealyzer::Result& cats) {
  std::set<std::string> sa;
  std::set<std::string> sb;
  for (const auto& p : a) {
    if (!p.truncated) sa.insert(action_signature(p, cats));
  }
  for (const auto& p : b) {
    if (!p.truncated) sb.insert(action_signature(p, cats));
  }
  PathSetComparison out;
  for (const auto& s : sa) {
    if (sb.count(s)) {
      ++out.common;
    } else {
      out.only_in_a.push_back(s);
    }
  }
  for (const auto& s : sb) {
    if (!sa.count(s)) out.only_in_b.push_back(s);
  }
  return out;
}

std::map<std::string, symex::SymRef> config_bindings(const ir::Module& m) {
  std::map<std::string, symex::SymRef> out;
  for (const auto& [name, v] : lint::config_env(m)) {
    using K = analysis::ConstVal::Kind;
    switch (v.kind) {
      case K::kInt: out[name] = symex::make_int(v.i); break;
      case K::kBool: out[name] = symex::make_bool(v.b); break;
      case K::kStr: out[name] = symex::make_str(v.s); break;
      default: break;
    }
  }
  return out;
}

PathSetComparison compare_action_sets_under_config(
    const std::vector<symex::ExecPath>& full,
    const std::vector<symex::ExecPath>& specialized,
    const statealyzer::Result& cats_full,
    const statealyzer::Result& cats_spec,
    const std::map<std::string, symex::SymRef>& bindings) {
  symex::Solver solver;
  std::set<std::string> sa;
  for (const symex::ExecPath& p : full) {
    if (p.truncated) continue;
    symex::ExecPath sub = p;
    bool infeasible = false;
    std::vector<symex::SymRef> live;
    for (auto& c : sub.constraints) {
      symex::SymRef s = symex::substitute(c, bindings);
      if (s->kind == symex::SymKind::kConstBool) {
        if (!s->bool_val) {
          infeasible = true;  // this arm only existed for other configs
          break;
        }
        continue;  // constant-true: no information
      }
      live.push_back(s);
    }
    if (infeasible || solver.check(live) == symex::SatResult::kUnsat) continue;
    sub.constraints = std::move(live);
    for (auto& s : sub.sends) {
      for (auto& [f, v] : s.fields) v = symex::substitute(v, bindings);
      s.port = symex::substitute(s.port, bindings);
    }
    for (auto& [var, v] : sub.final_state) {
      v = symex::substitute(v, bindings);
    }
    sa.insert(action_signature(sub, cats_full));
  }

  std::set<std::string> sb;
  for (const auto& p : specialized) {
    if (!p.truncated) sb.insert(action_signature(p, cats_spec));
  }

  PathSetComparison out;
  for (const auto& s : sa) {
    if (sb.count(s)) {
      ++out.common;
    } else {
      out.only_in_a.push_back(s);
    }
  }
  for (const auto& s : sb) {
    if (!sa.count(s)) out.only_in_b.push_back(s);
  }
  return out;
}

}  // namespace nfactor::verify
