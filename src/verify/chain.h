// PGA-style service-chain composition (paper §4 "Service Policy
// Composition"): use each NF model's input/output spaces — which packet
// fields it matches on and which it rewrites — to decide a correct
// ordering when composing chains like {FW, IDS} + {LB}.
//
// Rule of thumb the paper motivates: an NF that *matches* on a header
// field must come before an NF that *rewrites* that field, otherwise its
// policy is evaluated on translated addresses and silently misfires.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "model/model.h"

namespace nfactor::verify {

struct IoSpace {
  std::set<std::string> fields_matched;   // pkt.* the model matches on
  std::set<std::string> fields_rewritten; // pkt.* some entry rewrites
};

IoSpace io_space(const model::Model& m);

struct OrderConstraint {
  std::string before;
  std::string after;
  std::string field;  // the conflicting field
};

struct OrderAdvice {
  std::vector<std::string> order;             // a valid ordering
  std::vector<OrderConstraint> constraints;   // why
  bool has_cycle = false;                     // no conflict-free order
};

/// Compute ordering constraints (matcher-before-rewriter) and a
/// topological order. Ties keep the input order.
OrderAdvice advise_order(
    const std::vector<std::pair<std::string, const model::Model*>>& nfs);

}  // namespace nfactor::verify
