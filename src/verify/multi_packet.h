// Multi-packet symbolic exploration: chain the per-packet symbolic
// executor across a K-packet *sequence*, threading the symbolic state
// (and accumulated path constraints) from each packet into the next.
// Packet i's header fields are the symbols "pkt<i>.field".
//
// This is the machinery BUZZ-style stateful test generation needs (paper
// §4 "Testing"): a state-dependent behaviour — "the reverse NAT entry
// fires" — shows up as a round-2 path whose constraints *relate pkt2's
// fields to pkt1's*, i.e. the generated second test packet must be
// derived from the first.
#pragma once

#include <vector>

#include "ir/ir.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"

namespace nfactor::verify {

struct SequencePath {
  /// One execution path per packet in the sequence, in order.
  std::vector<symex::ExecPath> rounds;

  /// All constraints across the sequence (round order preserved).
  std::vector<symex::SymRef> constraints() const;

  std::size_t total_sends() const;
  bool round_forwards(std::size_t i) const {
    return !rounds[i].sends.empty();
  }
};

struct SequenceOptions {
  int packets = 2;
  symex::ExecOptions per_round;       // filter, loop bounds, caps per packet
  std::size_t max_sequences = 512;    // exploration cap on full sequences
};

/// Explore all feasible K-packet sequences. Truncated rounds are not
/// extended further (their state is incomplete).
std::vector<SequencePath> explore_sequences(const ir::Module& m,
                                            const statealyzer::Result& cats,
                                            const SequenceOptions& opts = {});

}  // namespace nfactor::verify
