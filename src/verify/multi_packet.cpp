#include "verify/multi_packet.h"

namespace nfactor::verify {

std::vector<symex::SymRef> SequencePath::constraints() const {
  std::vector<symex::SymRef> out;
  for (const auto& r : rounds) {
    out.insert(out.end(), r.constraints.begin(), r.constraints.end());
  }
  return out;
}

std::size_t SequencePath::total_sends() const {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.sends.size();
  return n;
}

std::vector<SequencePath> explore_sequences(const ir::Module& m,
                                            const statealyzer::Result& cats,
                                            const SequenceOptions& opts) {
  symex::SymbolicExecutor se(m, cats);
  std::vector<SequencePath> frontier;

  // Round 1 from the fresh symbolic state.
  {
    symex::ExecOptions round = opts.per_round;
    round.pkt_prefix = "pkt1.";
    for (auto& p : se.run(round)) {
      SequencePath sp;
      sp.rounds.push_back(std::move(p));
      frontier.push_back(std::move(sp));
    }
  }

  for (int k = 2; k <= opts.packets; ++k) {
    std::vector<SequencePath> next;
    for (const SequencePath& sp : frontier) {
      if (next.size() >= opts.max_sequences) break;
      const symex::ExecPath& prev = sp.rounds.back();
      if (prev.truncated) continue;  // incomplete state: do not extend

      symex::ExecOptions round = opts.per_round;
      round.pkt_prefix = "pkt" + std::to_string(k) + ".";
      round.initial_globals = &prev.final_state;
      const auto inherited = sp.constraints();
      round.initial_pc = &inherited;

      for (auto& p : se.run(round)) {
        if (next.size() >= opts.max_sequences) break;
        SequencePath extended = sp;
        // ExecPath::constraints holds only this round's branch conditions
        // (inherited constraints live in the solver's initial pc), so the
        // rounds stay disjoint by construction.
        extended.rounds.push_back(std::move(p));
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

}  // namespace nfactor::verify
