#include "verify/topology.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "lang/builtins.h"
#include "netsim/packet.h"
#include "obs/obs.h"

namespace nfactor::verify {

using symex::SymRef;

// ---- Topology lookups -----------------------------------------------------

const TopoNode* Topology::node(const std::string& id) const {
  for (const auto& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const TopoPoint* Topology::ingress_point(const std::string& name) const {
  for (const auto& p : ingress) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const TopoPoint* Topology::egress_point(const std::string& name) const {
  for (const auto& p : egress) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const TopoEdge* Topology::edge_from(const std::string& from, int port) const {
  const TopoEdge* wildcard = nullptr;
  for (const auto& e : edges) {
    if (e.from != from) continue;
    if (e.from_port == port) return &e;
    if (e.from_port == -1) wildcard = &e;
  }
  return wildcard;
}

const TopoPoint* Topology::egress_at(const std::string& node_id,
                                     int port) const {
  for (const auto& p : egress) {
    if (p.node == node_id && (p.port == port || p.port == -1)) return &p;
  }
  return nullptr;
}

std::vector<std::string> Topology::validate() const {
  std::vector<std::string> problems;
  std::set<std::string> ids;
  for (const auto& n : nodes) {
    if (!ids.insert(n.id).second) {
      problems.push_back("duplicate node id '" + n.id + "'");
    }
    if (n.model == nullptr || n.module == nullptr) {
      problems.push_back("node '" + n.id + "' has no model");
    }
  }
  std::set<std::pair<std::string, int>> exact_edges;
  for (const auto& e : edges) {
    if (!ids.count(e.from)) {
      problems.push_back("edge from unknown node '" + e.from + "'");
    }
    if (!ids.count(e.to)) {
      problems.push_back("edge to unknown node '" + e.to + "'");
    }
    if (e.to_port < 0) {
      problems.push_back("edge into '" + e.to + "' needs a concrete port");
    }
    if (!exact_edges.insert({e.from, e.from_port}).second) {
      problems.push_back("duplicate edge from '" + e.from + "':" +
                         std::to_string(e.from_port));
    }
  }
  std::set<std::string> points;
  for (const auto& p : ingress) {
    if (!points.insert(p.name).second) {
      problems.push_back("duplicate point name '" + p.name + "'");
    }
    if (!ids.count(p.node)) {
      problems.push_back("ingress '" + p.name + "' on unknown node '" +
                         p.node + "'");
    }
  }
  for (const auto& p : egress) {
    if (!points.insert(p.name).second) {
      problems.push_back("duplicate point name '" + p.name + "'");
    }
    if (!ids.count(p.node)) {
      problems.push_back("egress '" + p.name + "' on unknown node '" + p.node +
                         "'");
    }
    if (p.port >= 0 && exact_edges.count({p.node, p.port})) {
      problems.push_back("port " + p.node + ":" + std::to_string(p.port) +
                         " is both linked and an egress point");
    }
  }
  return problems;
}

// ---- .topo parser ---------------------------------------------------------

namespace {

[[noreturn]] void parse_fail(int line, const std::string& why) {
  throw std::runtime_error("topology line " + std::to_string(line) + ": " +
                           why);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;  // comment to end of line
    toks.push_back(t);
  }
  return toks;
}

/// "node:port" with port '*' -> -1. `allow_wild` gates the '*' form.
std::pair<std::string, int> split_endpoint(const std::string& tok, int line,
                                           bool allow_wild) {
  const auto colon = tok.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == tok.size()) {
    parse_fail(line, "expected <node>:<port>, got '" + tok + "'");
  }
  const std::string node = tok.substr(0, colon);
  const std::string port = tok.substr(colon + 1);
  if (port == "*") {
    if (!allow_wild) parse_fail(line, "wildcard port not allowed here");
    return {node, -1};
  }
  try {
    std::size_t used = 0;
    const int p = std::stoi(port, &used);
    if (used != port.size() || p < 0) throw std::invalid_argument(port);
    return {node, p};
  } catch (const std::exception&) {
    parse_fail(line, "bad port '" + port + "'");
  }
}

std::int64_t parse_int_value(const std::string& text, int line) {
  // Dotted quad -> IPv4 value; otherwise a (possibly hex) integer.
  if (text.find('.') != std::string::npos) {
    try {
      return static_cast<std::int64_t>(netsim::ipv4(text));
    } catch (const std::exception&) {
      parse_fail(line, "bad address '" + text + "'");
    }
  }
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(text, &used, 0);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    parse_fail(line, "bad value '" + text + "'");
  }
}

}  // namespace

Topology parse_topology(const std::string& text,
                        const ModelResolver& resolve) {
  Topology topo;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (kw == "node") {
      if (toks.size() < 3) parse_fail(lineno, "node <id> <nf> [cfg K=V]...");
      TopoNode n;
      n.id = toks[1];
      n.nf = toks[2];
      for (std::size_t i = 3; i < toks.size(); ++i) {
        if (toks[i] == "cfg") continue;
        const auto eq = toks[i].find('=');
        if (eq == std::string::npos || eq == 0) {
          parse_fail(lineno, "expected NAME=VALUE, got '" + toks[i] + "'");
        }
        n.cfg[toks[i].substr(0, eq)] =
            parse_int_value(toks[i].substr(eq + 1), lineno);
      }
      const NodeModels m = resolve(n.nf);
      if (m.model == nullptr || m.module == nullptr) {
        parse_fail(lineno, "unknown NF '" + n.nf + "'");
      }
      n.model = m.model;
      n.module = m.module;
      topo.nodes.push_back(std::move(n));
    } else if (kw == "edge") {
      if (toks.size() != 4 || toks[2] != "->") {
        parse_fail(lineno, "edge <a>:<port> -> <b>:<port>");
      }
      TopoEdge e;
      std::tie(e.from, e.from_port) = split_endpoint(toks[1], lineno, true);
      std::tie(e.to, e.to_port) = split_endpoint(toks[3], lineno, false);
      topo.edges.push_back(std::move(e));
    } else if (kw == "ingress" || kw == "egress") {
      const bool in = kw == "ingress";
      if (toks.size() != 4 || toks[2] != (in ? "->" : "<-")) {
        parse_fail(lineno, in ? "ingress <name> -> <node>:<port>"
                              : "egress <name> <- <node>:<port>");
      }
      TopoPoint p;
      p.name = toks[1];
      std::tie(p.node, p.port) = split_endpoint(toks[3], lineno, true);
      (in ? topo.ingress : topo.egress).push_back(std::move(p));
    } else {
      parse_fail(lineno, "unknown directive '" + kw + "'");
    }
  }
  const auto problems = topo.validate();
  if (!problems.empty()) {
    throw std::runtime_error("invalid topology: " + problems.front());
  }
  return topo;
}

// ---- Query parser ---------------------------------------------------------

std::string to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kReach: return "reach";
    case QueryKind::kIsolate: return "isolate";
    case QueryKind::kWaypoint: return "waypoint";
  }
  return "?";
}

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

SymRef parse_where_atom(const std::string& atom) {
  using lang::BinOp;
  static const std::vector<std::pair<std::string, BinOp>> kOps = {
      {"==", BinOp::kEq}, {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
      {">=", BinOp::kGe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
  };
  for (const auto& [text, op] : kOps) {
    const auto pos = atom.find(text);
    if (pos == std::string::npos) continue;
    const std::string lhs = trim(atom.substr(0, pos));
    const std::string rhs = trim(atom.substr(pos + text.size()));
    if (!lhs.starts_with("pkt.")) {
      throw std::runtime_error("where clause must constrain pkt.* fields: '" +
                               atom + "'");
    }
    const std::string field = lhs.substr(4);
    bool known = false;
    for (const auto& f : lang::packet_fields()) known |= f.name == field;
    if (!known) {
      throw std::runtime_error("unknown packet field '" + lhs + "'");
    }
    return symex::make_bin(op, symex::make_var(lhs, symex::VarClass::kPkt),
                           symex::make_int(parse_int_value(rhs, 0)));
  }
  throw std::runtime_error("bad where atom '" + atom +
                           "' (expected pkt.<field> OP <value>)");
}

}  // namespace

Query parse_query(const std::string& spec) {
  std::istringstream is(spec);
  std::string kind;
  Query q;
  if (!(is >> kind >> q.from >> q.to)) {
    throw std::runtime_error(
        "bad query '" + spec +
        "' (expected: reach|isolate|waypoint <from> <to> ...)");
  }
  if (kind == "reach") {
    q.kind = QueryKind::kReach;
  } else if (kind == "isolate") {
    q.kind = QueryKind::kIsolate;
  } else if (kind == "waypoint") {
    q.kind = QueryKind::kWaypoint;
  } else {
    throw std::runtime_error("unknown query kind '" + kind + "'");
  }
  std::string tok;
  if (is >> tok) {
    if (tok == "via") {
      if (q.kind != QueryKind::kWaypoint) {
        throw std::runtime_error("'via' is only valid on waypoint queries");
      }
      if (!(is >> q.via)) throw std::runtime_error("via needs a node id");
      if (!(is >> tok)) tok.clear();
    }
    if (!tok.empty()) {
      if (tok != "where") {
        throw std::runtime_error("unexpected token '" + tok + "'");
      }
      std::string rest;
      std::getline(is, rest);
      q.where_text = trim(rest);
      if (q.where_text.empty()) {
        throw std::runtime_error("empty where clause");
      }
      // Split the conjunction on '&&'.
      std::string remaining = q.where_text;
      while (true) {
        const auto amp = remaining.find("&&");
        const std::string atom =
            trim(amp == std::string::npos ? remaining : remaining.substr(0, amp));
        if (atom.empty()) throw std::runtime_error("empty where atom");
        q.where.push_back(parse_where_atom(atom));
        if (amp == std::string::npos) break;
        remaining = remaining.substr(amp + 2);
      }
    }
  }
  if (q.kind == QueryKind::kWaypoint && q.via.empty()) {
    throw std::runtime_error("waypoint queries need 'via <node>'");
  }
  return q;
}

// ---- Query engine ---------------------------------------------------------

namespace {

/// One model entry with this instance's config pins substituted and its
/// state/config symbols "<id>$"-prefixed. Precomputed once per query so
/// the traversal only does per-hop packet-field substitution.
struct InstSend {
  std::map<std::string, SymRef> rewrites;  // "pkt.<field>" keyed
  SymRef port;
};
struct InstEntry {
  int index = 0;
  std::vector<SymRef> match;  // config + flow + state conjuncts
  std::vector<InstSend> sends;
};
struct Instance {
  const TopoNode* node = nullptr;
  std::vector<InstEntry> entries;       // forwarding entries only
  std::vector<int> known_ports;         // sorted exact out-ports at this node
  bool has_wildcard_out = false;        // a wildcard edge leaves this node
};

Instance prepare_instance(const Topology& topo, const TopoNode& n) {
  Instance inst;
  inst.node = &n;
  const std::string prefix = n.id + "$";
  std::map<std::string, SymRef> pins;
  for (const auto& [name, value] : n.cfg) {
    pins[name] = symex::make_int(value);
  }
  const auto land = [&](const SymRef& e) {
    const SymRef pinned = pins.empty() ? e : symex::substitute(e, pins);
    return symex::prefix_symbols(pinned, prefix);
  };
  for (std::size_t ei = 0; ei < n.model->entries.size(); ++ei) {
    const model::ModelEntry& e = n.model->entries[ei];
    if (e.is_drop()) continue;  // dropped packets never leave the node
    InstEntry ie;
    ie.index = static_cast<int>(ei);
    for (const auto& c : e.config_match) ie.match.push_back(land(c));
    for (const auto& c : e.flow_match) ie.match.push_back(land(c));
    for (const auto& c : e.state_match) ie.match.push_back(land(c));
    for (const auto& a : e.flow_action) {
      InstSend s;
      for (const auto& [field, expr] : a.rewrites) {
        s.rewrites["pkt." + field] = land(expr);
      }
      s.port = land(a.port);
      ie.sends.push_back(std::move(s));
    }
    inst.entries.push_back(std::move(ie));
  }
  std::set<int> ports;
  for (const auto& e : topo.edges) {
    if (e.from != n.id) continue;
    if (e.from_port >= 0) {
      ports.insert(e.from_port);
    } else {
      inst.has_wildcard_out = true;
    }
  }
  for (const auto& p : topo.egress) {
    if (p.node == n.id && p.port >= 0) ports.insert(p.port);
  }
  inst.known_ports.assign(ports.begin(), ports.end());
  return inst;
}

struct Frame {
  int node = -1;  ///< index into the instance array
  int in_port = -1;
  std::vector<SymRef> constraints;
  std::map<std::string, SymRef> fields;  ///< "pkt.<f>" -> current expr
  std::vector<TopoHop> hops;
  std::vector<char> visited;  ///< per node index (simple paths only)
};

/// Result of expanding one frame: children for the next level plus the
/// paths delivered at the target point, all in deterministic order.
struct Expansion {
  std::vector<Frame> children;
  std::vector<TopoPath> delivered;
  std::size_t infeasible = 0;
  std::size_t cycle_pruned = 0;
  bool depth_truncated = false;
};

class QueryEngine {
 public:
  QueryEngine(const Topology& topo, const Query& q, const QueryOptions& opts)
      : topo_(topo), q_(q), opts_(opts) {
    for (const auto& n : topo.nodes) {
      instances_.push_back(prepare_instance(topo, n));
      node_index_[n.id] = static_cast<int>(instances_.size()) - 1;
    }
  }

  Expansion expand(const Frame& fr, symex::Solver& solver) const {
    Expansion out;
    const Instance& inst = instances_[static_cast<std::size_t>(fr.node)];
    const std::string& id = inst.node->id;

    // The link (or ingress point) fixed this hop's arrival port.
    std::map<std::string, SymRef> fields = fr.fields;
    if (fr.in_port >= 0) {
      fields["pkt.in_port"] = symex::make_int(fr.in_port);
    }

    for (const InstEntry& e : inst.entries) {
      std::vector<SymRef> entry_constraints = fr.constraints;
      bool trivially_false = false;
      for (const auto& c : e.match) {
        const SymRef cc = symex::substitute(c, fields);
        if (symex::is_const_bool(cc) && !cc->bool_val) trivially_false = true;
        entry_constraints.push_back(cc);
      }
      if (trivially_false ||
          solver.check(entry_constraints) == symex::SatResult::kUnsat) {
        ++out.infeasible;
        continue;
      }

      for (std::size_t si = 0; si < e.sends.size(); ++si) {
        const InstSend& send = e.sends[si];
        std::map<std::string, SymRef> sent = fields;
        for (const auto& [field, expr] : send.rewrites) {
          sent[field] = symex::substitute(expr, fields);
        }
        const SymRef port = symex::substitute(send.port, fields);

        TopoHop hop;
        hop.node = id;
        hop.entry = e.index;
        hop.send = static_cast<int>(si);
        hop.in_port = fr.in_port;

        if (symex::is_const_int(port)) {
          hop.out_port = static_cast<int>(port->int_val);
          route(fr, hop, entry_constraints, sent, out);
          continue;
        }
        // Symbolic egress port: branch per known port of this node, and
        // (if a wildcard link exists) a residual "some other port" branch.
        for (const int p : inst.known_ports) {
          std::vector<SymRef> with_port = entry_constraints;
          with_port.push_back(
              symex::make_bin(lang::BinOp::kEq, port, symex::make_int(p)));
          if (solver.check(with_port) == symex::SatResult::kUnsat) {
            ++out.infeasible;
            continue;
          }
          TopoHop h = hop;
          h.out_port = p;
          route(fr, h, with_port, sent, out);
        }
        if (inst.has_wildcard_out) {
          std::vector<SymRef> residual = entry_constraints;
          for (const int p : inst.known_ports) {
            residual.push_back(
                symex::make_bin(lang::BinOp::kNe, port, symex::make_int(p)));
          }
          if (solver.check(residual) == symex::SatResult::kUnsat) {
            ++out.infeasible;
            continue;
          }
          TopoHop h = hop;
          h.out_port = -1;
          route(fr, h, residual, sent, out);
        }
      }
    }
    return out;
  }

  Frame initial(const TopoPoint& in) const {
    Frame fr;
    fr.node = node_index_.at(in.node);
    fr.in_port = in.port;
    fr.constraints = q_.where;
    for (const auto& f : lang::packet_fields()) {
      fr.fields["pkt." + f.name] =
          symex::make_var("pkt." + f.name, symex::VarClass::kPkt);
    }
    fr.visited.assign(instances_.size(), 0);
    fr.visited[static_cast<std::size_t>(fr.node)] = 1;
    return fr;
  }

  const Query& query() const { return q_; }

 private:
  /// Deliver or forward one routed emission.
  void route(const Frame& fr, const TopoHop& hop,
             const std::vector<SymRef>& constraints,
             const std::map<std::string, SymRef>& sent, Expansion& out) const {
    const std::string& id = hop.node;
    if (hop.out_port >= 0) {
      if (const TopoPoint* ep = topo_.egress_at(id, hop.out_port)) {
        if (ep->name != q_.to) return;  // exits the network elsewhere
        TopoPath path;
        path.hops = fr.hops;
        path.hops.push_back(hop);
        path.constraints = constraints;
        path.egress_fields = sent;
        out.delivered.push_back(std::move(path));
        return;
      }
    }
    const TopoEdge* edge = hop.out_port >= 0
                               ? topo_.edge_from(id, hop.out_port)
                               : topo_.edge_from(id, -1);
    if (edge == nullptr) return;  // dangling port: packet is lost
    const int next = node_index_.at(edge->to);
    if (fr.visited[static_cast<std::size_t>(next)] != 0) {
      ++out.cycle_pruned;
      return;
    }
    if (fr.hops.size() + 1 >= static_cast<std::size_t>(opts_.max_hops)) {
      out.depth_truncated = true;
      return;
    }
    Frame child;
    child.node = next;
    child.in_port = edge->to_port;
    child.constraints = constraints;
    child.fields = sent;
    child.hops = fr.hops;
    child.hops.push_back(hop);
    child.visited = fr.visited;
    child.visited[static_cast<std::size_t>(next)] = 1;
    out.children.push_back(std::move(child));
  }

  const Topology& topo_;
  const Query& q_;
  const QueryOptions& opts_;
  std::vector<Instance> instances_;
  std::map<std::string, int> node_index_;
};

/// Does this delivered path count as evidence for the query?
bool is_evidence(const Query& q, const TopoPath& path) {
  if (q.kind != QueryKind::kWaypoint) return true;  // any delivered path
  for (const auto& h : path.hops) {
    if (h.node == q.via) return false;  // traversed the waypoint: compliant
  }
  return true;  // delivered while skipping the waypoint: violation
}

bool mentions_state(const symex::SymExpr* e,
                    std::unordered_set<const symex::SymExpr*>& seen) {
  if (!seen.insert(e).second) return false;
  switch (e->kind) {
    case symex::SymKind::kContains:
    case symex::SymKind::kMapGet:
    case symex::SymKind::kMapBase:
    case symex::SymKind::kMapStore:
      return true;
    default:
      break;
  }
  for (const auto& c : e->operands) {
    if (mentions_state(c.get(), seen)) return true;
  }
  for (const auto& [f, v] : e->fields) {
    (void)f;
    if (mentions_state(v.get(), seen)) return true;
  }
  return false;
}

/// Can this path's condition possibly hold on *fresh* instance state?
/// Negative membership atoms are fine on empty maps; positive membership
/// or any map read cannot be. Used only to order the evidence list so
/// witness materialization tries fresh-state paths first — the concrete
/// verification in materialize_witness stays the authority.
bool needs_state(const TopoPath& path) {
  for (const auto& c : path.constraints) {
    const symex::SymExpr* e = c.get();
    int negations = 0;
    while (e->kind == symex::SymKind::kUn && e->un_op == lang::UnOp::kNot) {
      e = e->operands[0].get();
      ++negations;
    }
    if (e->kind == symex::SymKind::kContains) {
      if (negations % 2 == 1) continue;  // "not in map": fresh state is fine
      return true;                       // membership required
    }
    std::unordered_set<const symex::SymExpr*> seen;
    if (mentions_state(e, seen)) return true;
  }
  return false;
}

}  // namespace

QueryResult run_query(const Topology& topo, const Query& q,
                      const QueryOptions& opts) {
  OBS_SPAN("verify.topology.query");
  OBS_COUNT("verify.topology.queries");

  const TopoPoint* in = topo.ingress_point(q.from);
  if (in == nullptr) {
    throw std::runtime_error("unknown ingress point '" + q.from + "'");
  }
  if (topo.egress_point(q.to) == nullptr) {
    throw std::runtime_error("unknown egress point '" + q.to + "'");
  }
  if (q.kind == QueryKind::kWaypoint && topo.node(q.via) == nullptr) {
    throw std::runtime_error("unknown waypoint node '" + q.via + "'");
  }

  QueryResult result;
  result.query = q;

  const QueryEngine engine(topo, q, opts);
  std::vector<Frame> frontier;
  frontier.push_back(engine.initial(*in));

  int jobs = opts.jobs > 0
                 ? opts.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;

  std::uint64_t solver_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<TopoPath> fresh_paths;
  std::vector<TopoPath> stateful_paths;
  bool stop = false;
  while (!frontier.empty() && !stop) {
    if (result.stats.frames + frontier.size() > opts.max_frames) {
      frontier.resize(opts.max_frames - result.stats.frames);
      result.stats.truncated = true;
      if (frontier.empty()) break;
    }
    const std::size_t n = frontier.size();
    std::vector<Expansion> expansions(n);

    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
    if (workers <= 1) {
      symex::Solver solver(opts.solver_cache);
      for (std::size_t i = 0; i < n; ++i) {
        expansions[i] = engine.expand(frontier[i], solver);
      }
      solver_queries += solver.query_count();
      cache_hits += solver.cache_hits();
      cache_misses += solver.cache_misses();
    } else {
      std::atomic<std::size_t> next{0};
      std::atomic<std::uint64_t> queries{0}, hits{0}, misses{0};
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          symex::Solver solver(opts.solver_cache);
          for (std::size_t i = next.fetch_add(1); i < n;
               i = next.fetch_add(1)) {
            expansions[i] = engine.expand(frontier[i], solver);
          }
          queries += solver.query_count();
          hits += solver.cache_hits();
          misses += solver.cache_misses();
        });
      }
      for (auto& t : pool) t.join();
      solver_queries += queries.load();
      cache_hits += hits.load();
      cache_misses += misses.load();
    }

    result.stats.frames += n;
    std::vector<Frame> next_frontier;
    for (std::size_t i = 0; i < n; ++i) {
      Expansion& ex = expansions[i];
      result.stats.infeasible += ex.infeasible;
      result.stats.cycle_pruned += ex.cycle_pruned;
      if (ex.depth_truncated) result.stats.truncated = true;
      for (auto& path : ex.delivered) {
        if (!is_evidence(q, path)) continue;
        // Fresh-state paths are the witness candidates: keep them ahead
        // of state-dependent ones and only stop once *their* pool is
        // full (state-dependent evidence beyond the cap is just noted).
        auto& pool = needs_state(path) ? stateful_paths : fresh_paths;
        if (pool.size() >= opts.max_paths) {
          result.stats.truncated = true;
          if (&pool == &fresh_paths) {
            stop = true;
            break;
          }
          continue;
        }
        pool.push_back(std::move(path));
      }
      if (stop) break;
      for (auto& child : ex.children) {
        next_frontier.push_back(std::move(child));
      }
    }
    frontier = std::move(next_frontier);
  }

  result.paths = std::move(fresh_paths);
  for (auto& path : stateful_paths) {
    if (result.paths.size() >= opts.max_paths) {
      result.stats.truncated = true;
      break;
    }
    result.paths.push_back(std::move(path));
  }

  result.stats.solver_queries = solver_queries;
  result.stats.cache_hits = cache_hits;
  result.stats.cache_misses = cache_misses;
  result.sat = !result.paths.empty();
  result.holds = q.kind == QueryKind::kReach ? result.sat : !result.sat;

  OBS_COUNT_N("verify.topology.frames", result.stats.frames);
  OBS_COUNT_N("verify.topology.infeasible", result.stats.infeasible);
  OBS_COUNT_N("verify.topology.paths", result.paths.size());
  OBS_COUNT_N("verify.topology.solver.queries", solver_queries);
  if (cache_hits + cache_misses > 0) {
    OBS_GAUGE("verify.topology.cache.hit_rate",
              static_cast<double>(cache_hits) /
                  static_cast<double>(cache_hits + cache_misses));
  }
  return result;
}

}  // namespace nfactor::verify
