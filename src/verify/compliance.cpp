#include "verify/compliance.h"

#include <optional>
#include <sstream>

#include "model/interp.h"
#include "runtime/interp.h"
#include "symex/concrete_eval.h"
#include "verify/probe.h"

namespace nfactor::verify {

namespace {

using symex::SymKind;
using symex::SymRef;

std::string to_statusless_note(const std::string& why) { return why; }

/// Positive map-membership requirement extracted from a state match.
struct MembershipNeed {
  std::string map_name;  // MapBase name
  SymRef key_expr;       // over pkt.* symbols of the probe
};

/// Inspect state_match: return needs (positive Contains on a MapBase).
/// Negative Contains and other state predicates are fine on a *fresh*
/// state, so they need no priming.
bool analyze_state_match(const std::vector<SymRef>& state_match,
                         std::vector<MembershipNeed>& needs) {
  for (const auto& c : state_match) {
    SymRef e = c;
    bool polarity = true;
    while (e->kind == SymKind::kUn && e->un_op == lang::UnOp::kNot) {
      e = e->operands[0];
      polarity = !polarity;
    }
    if (e->kind == SymKind::kContains) {
      if (!polarity) continue;  // absent on fresh state: OK
      const SymRef& container = e->operands[0];
      if (container->kind != SymKind::kMapBase) return false;
      needs.push_back({container->str_val, e->operands[1]});
      continue;
    }
    // Non-membership state predicates (e.g. MapGet(...) == 1, counters):
    // handled only when the priming step establishes them; accept
    // optimistically — the run phase verifies actual compliance.
  }
  return true;
}

/// Invert a tuple-of-packet-fields key expression: assign probe fields so
/// key(probe) == wanted.
bool invert_key(const SymRef& key_expr, const runtime::Tuple& wanted,
                ProbeBuilder& probe) {
  if (key_expr->kind == SymKind::kTupleExpr) {
    if (key_expr->operands.size() != wanted.size()) return false;
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const auto f = pkt_field_of(key_expr->operands[i]);
      if (!f) return false;
      if (!probe.set_field(*f, wanted[i])) return false;
    }
    return true;
  }
  if (const auto f = pkt_field_of(key_expr); f && wanted.size() == 1) {
    return probe.set_field(*f, wanted[0]);
  }
  return false;
}

}  // namespace

std::string to_string(CaseStatus s) {
  switch (s) {
    case CaseStatus::kPassed: return "passed";
    case CaseStatus::kFailed: return "failed";
    case CaseStatus::kUncovered: return "uncovered";
    case CaseStatus::kConfigSkip: return "config-skip";
  }
  return "?";
}

std::string ComplianceReport::summary() const {
  std::ostringstream os;
  os << passed << " passed, " << failed << " failed, " << uncovered
     << " uncovered, " << config_skipped << " config-skipped (of "
     << cases.size() << " entries)";
  return os.str();
}

ComplianceReport run_compliance(const ir::Module& module,
                                const model::Model& model) {
  ComplianceReport report;
  const auto store = model::initial_store(module);
  const symex::ConcreteEnv cfg_env = store_env(store);

  for (std::size_t ei = 0; ei < model.entries.size(); ++ei) {
    const model::ModelEntry& entry = model.entries[ei];
    TestCase tc;
    tc.entry_index = static_cast<int>(ei);

    // Entry must belong to the deployed configuration.
    bool config_ok = true;
    for (const auto& c : entry.config_match) {
      const auto v = try_const(c, cfg_env);
      if (!v || *v == 0) config_ok = false;
    }
    if (!config_ok) {
      tc.status = CaseStatus::kConfigSkip;
      tc.note = "entry belongs to a different configuration table";
      report.cases.push_back(std::move(tc));
      ++report.config_skipped;
      continue;
    }

    // Build the probe from the flow match.
    ProbeBuilder probe(cfg_env);
    bool ok = true;
    for (const auto& c : entry.flow_match) {
      if (!probe.apply(c)) {
        ok = false;
        tc.note = to_statusless_note("unsupported flow constraint: " +
                                     symex::to_string(*c));
        break;
      }
    }

    // State setup via priming.
    std::vector<MembershipNeed> needs;
    if (ok && !analyze_state_match(entry.state_match, needs)) {
      ok = false;
      tc.note = "state match too complex to synthesize";
    }
    std::vector<netsim::Packet> priming;
    if (ok && !needs.empty()) {
      for (const auto& need : needs) {
        // Find an inserter entry for this map whose own state match has
        // no positive membership requirement.
        bool primed = false;
        for (const auto& other : model.entries) {
          const auto it = other.state_action.find(need.map_name);
          if (it == other.state_action.end()) continue;
          if (it->second->kind != SymKind::kMapStore) continue;
          std::vector<MembershipNeed> sub;
          if (!analyze_state_match(other.state_match, sub) || !sub.empty()) {
            continue;
          }
          bool other_cfg_ok = true;
          for (const auto& c : other.config_match) {
            const auto v = try_const(c, cfg_env);
            if (!v || *v == 0) other_cfg_ok = false;
          }
          if (!other_cfg_ok) continue;

          ProbeBuilder prime(cfg_env);
          bool prime_ok = true;
          for (const auto& c : other.flow_match) {
            if (!prime.apply(c)) {
              prime_ok = false;
              break;
            }
          }
          if (!prime_ok) continue;

          // Key the priming packet inserts.
          const netsim::Packet prime_pkt = prime.packet();
          symex::ConcreteEnv pk_env = cfg_env;
          pk_env.input_packet = &prime_pkt;
          pk_env.var = [&store, &prime_pkt](const std::string& name) {
            if (name.starts_with("pkt.")) {
              const std::string f = name.substr(4);
              if (f == "__payload") return runtime::Value(runtime::Int(0));
              if (f == "in_port") {
                return runtime::Value(runtime::Int(prime_pkt.in_port));
              }
              return runtime::Value(runtime::get_packet_field(prime_pkt, f));
            }
            const auto it2 = store.find(name);
            if (it2 == store.end()) throw std::out_of_range(name);
            return it2->second;
          };
          try {
            const runtime::Value inserted_key =
                symex::eval_concrete(it->second->operands[1], pk_env);
            const runtime::Tuple key = runtime::to_key(inserted_key);
            if (!invert_key(need.key_expr, key, probe)) continue;
          } catch (const std::exception&) {
            continue;
          }
          priming.push_back(prime_pkt);
          primed = true;
          break;
        }
        if (!primed) {
          ok = false;
          tc.note = "no priming entry found for map '" + need.map_name + "'";
          break;
        }
      }
    }

    if (!ok) {
      tc.status = CaseStatus::kUncovered;
      report.cases.push_back(std::move(tc));
      ++report.uncovered;
      continue;
    }

    // Execute the sequence against both sides.
    tc.sequence = priming;
    tc.sequence.push_back(probe.packet());

    runtime::Interpreter orig(module);
    model::ModelInterpreter synth(model, store);
    bool behaviour_match = true;
    int matched_entry = -1;
    for (std::size_t i = 0; i < tc.sequence.size(); ++i) {
      const runtime::Output oo = orig.process(tc.sequence[i]);
      const model::ModelOutput mo = synth.process(tc.sequence[i]);
      if (i + 1 == tc.sequence.size()) matched_entry = mo.matched_entry;
      if (oo.sent.size() != mo.sent.size()) {
        behaviour_match = false;
        break;
      }
      for (std::size_t k = 0; k < oo.sent.size(); ++k) {
        if (!(oo.sent[k].first == mo.sent[k].first) ||
            oo.sent[k].second != mo.sent[k].second) {
          behaviour_match = false;
          break;
        }
      }
    }

    if (behaviour_match && matched_entry == tc.entry_index) {
      tc.status = CaseStatus::kPassed;
      ++report.passed;
    } else if (!behaviour_match) {
      tc.status = CaseStatus::kFailed;
      tc.note = "original and model diverged on the generated sequence";
      ++report.failed;
    } else {
      tc.status = CaseStatus::kUncovered;
      tc.note = "probe matched entry " + std::to_string(matched_entry) +
                " instead (overlapping matches)";
      ++report.uncovered;
    }
    report.cases.push_back(std::move(tc));
  }
  return report;
}

}  // namespace nfactor::verify
