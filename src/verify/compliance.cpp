#include "verify/compliance.h"

#include <optional>
#include <sstream>

#include "model/interp.h"
#include "runtime/interp.h"
#include "symex/concrete_eval.h"

namespace nfactor::verify {

namespace {

using symex::SymKind;
using symex::SymRef;

std::string to_statusless_note(const std::string& why) { return why; }

/// Environment for evaluating the non-packet side of match constraints
/// against the deployed configuration/initial state.
symex::ConcreteEnv store_env(const std::map<std::string, runtime::Value>& store) {
  symex::ConcreteEnv env;
  env.var = [&store](const std::string& name) -> runtime::Value {
    const auto it = store.find(name);
    if (it == store.end()) throw std::out_of_range("unknown symbol " + name);
    return it->second;
  };
  env.map_base = [&store](const std::string& name) -> const runtime::MapV* {
    const auto it = store.find(name);
    if (it == store.end() || !it->second.is_map()) return nullptr;
    return &it->second.as_map();
  };
  return env;
}

std::optional<std::string> pkt_field_of(const SymRef& e) {
  if (e->kind == SymKind::kVar && e->var_class == symex::VarClass::kPkt &&
      e->str_val.starts_with("pkt.")) {
    return e->str_val.substr(4);
  }
  return std::nullopt;
}

/// Try to evaluate an expression that should not depend on the packet.
std::optional<runtime::Int> try_const(const SymRef& e,
                                      const symex::ConcreteEnv& env) {
  try {
    const runtime::Value v = symex::eval_concrete(e, env);
    if (v.is_int()) return v.as_int();
    if (v.is_bool()) return v.as_bool() ? 1 : 0;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

class ProbeBuilder {
 public:
  explicit ProbeBuilder(const symex::ConcreteEnv& env) : env_(env) {
    // Neutral default probe.
    probe_.ip_src = 0x0A000009;  // 10.0.0.9
    probe_.ip_dst = 0x03030303;
    probe_.sport = 1234;
    probe_.dport = 80;
    probe_.tcp_flags = netsim::kAck;
  }

  netsim::Packet packet() const { return probe_; }

  /// Apply one flow-match constraint; false = unsupported shape.
  bool apply(const SymRef& c, bool polarity = true) {
    if (c->kind == SymKind::kUn && c->un_op == lang::UnOp::kNot) {
      return apply(c->operands[0], !polarity);
    }
    if (c->kind == SymKind::kCall && c->str_val == "payload_contains") {
      const SymRef& needle = c->operands[1];
      if (needle->kind != SymKind::kConstStr) return false;
      if (polarity) {
        probe_.payload.assign(needle->str_val.begin(), needle->str_val.end());
      } else {
        probe_.payload.clear();
      }
      return true;
    }
    if (c->kind != SymKind::kBin) return false;
    using lang::BinOp;
    const BinOp op = c->bin_op;
    const SymRef& a = c->operands[0];
    const SymRef& b = c->operands[1];

    if (op == BinOp::kAnd && polarity) {
      return apply(a, true) && apply(b, true);
    }
    if (op == BinOp::kOr && polarity) {
      return apply(a, true);  // satisfy the first disjunct
    }
    if (op == BinOp::kOr && !polarity) {
      return apply(a, false) && apply(b, false);
    }

    // Flag-mask tests: (pkt.tcp_flags & m) ==/!= 0.
    if ((op == BinOp::kEq || op == BinOp::kNe) &&
        a->kind == SymKind::kBin && a->bin_op == BinOp::kBitAnd) {
      const auto field = pkt_field_of(a->operands[0]);
      const auto mask = try_const(a->operands[1], env_);
      const auto rhs = try_const(b, env_);
      if (field && *field == "tcp_flags" && mask && rhs && *rhs == 0) {
        const bool want_set = (op == BinOp::kNe) == polarity;
        if (want_set) {
          probe_.tcp_flags |= static_cast<std::uint8_t>(*mask);
        } else {
          probe_.tcp_flags &= static_cast<std::uint8_t>(~*mask);
        }
        return true;
      }
      return false;
    }

    // field OP const-side
    auto field = pkt_field_of(a);
    SymRef other = b;
    bool flipped = false;
    if (!field) {
      field = pkt_field_of(b);
      other = a;
      flipped = true;
    }
    if (!field) {
      // Constraint not over the packet (pure config/state residue):
      // verify it holds under the deployed config.
      const auto v = try_const(c, env_);
      return v.has_value() && ((*v != 0) == polarity);
    }
    const auto val = try_const(other, env_);
    if (!val) return false;

    BinOp eff = op;
    if (!polarity) {
      switch (op) {
        case BinOp::kEq: eff = BinOp::kNe; break;
        case BinOp::kNe: eff = BinOp::kEq; break;
        case BinOp::kLt: eff = BinOp::kGe; break;
        case BinOp::kGe: eff = BinOp::kLt; break;
        case BinOp::kGt: eff = BinOp::kLe; break;
        case BinOp::kLe: eff = BinOp::kGt; break;
        default: return false;
      }
    }
    if (flipped) {
      switch (eff) {
        case BinOp::kLt: eff = BinOp::kGt; break;
        case BinOp::kGt: eff = BinOp::kLt; break;
        case BinOp::kLe: eff = BinOp::kGe; break;
        case BinOp::kGe: eff = BinOp::kLe; break;
        default: break;
      }
    }
    switch (eff) {
      case BinOp::kEq: return set_field(*field, *val);
      case BinOp::kNe: return set_field(*field, *val + 1);
      case BinOp::kLt: return set_field(*field, *val - 1);
      case BinOp::kLe: return set_field(*field, *val);
      case BinOp::kGt: return set_field(*field, *val + 1);
      case BinOp::kGe: return set_field(*field, *val);
      default: return false;
    }
  }

  bool set_field(const std::string& field, runtime::Int v) {
    try {
      runtime::set_packet_field(probe_, field, v);
      return true;
    } catch (const std::exception&) {
      if (field == "in_port") {
        probe_.in_port = static_cast<int>(v);
        return true;
      }
      if (field == "len") {
        if (v < 0 || v > 1400) return false;
        probe_.payload.assign(static_cast<std::size_t>(v), 0x61);
        return true;
      }
      return false;
    }
  }

 private:
  netsim::Packet probe_;
  symex::ConcreteEnv env_;
};

/// Positive map-membership requirement extracted from a state match.
struct MembershipNeed {
  std::string map_name;  // MapBase name
  SymRef key_expr;       // over pkt.* symbols of the probe
};

/// Inspect state_match: return needs (positive Contains on a MapBase).
/// Negative Contains and other state predicates are fine on a *fresh*
/// state, so they need no priming.
bool analyze_state_match(const std::vector<SymRef>& state_match,
                         std::vector<MembershipNeed>& needs) {
  for (const auto& c : state_match) {
    SymRef e = c;
    bool polarity = true;
    while (e->kind == SymKind::kUn && e->un_op == lang::UnOp::kNot) {
      e = e->operands[0];
      polarity = !polarity;
    }
    if (e->kind == SymKind::kContains) {
      if (!polarity) continue;  // absent on fresh state: OK
      const SymRef& container = e->operands[0];
      if (container->kind != SymKind::kMapBase) return false;
      needs.push_back({container->str_val, e->operands[1]});
      continue;
    }
    // Non-membership state predicates (e.g. MapGet(...) == 1, counters):
    // handled only when the priming step establishes them; accept
    // optimistically — the run phase verifies actual compliance.
  }
  return true;
}

/// Invert a tuple-of-packet-fields key expression: assign probe fields so
/// key(probe) == wanted.
bool invert_key(const SymRef& key_expr, const runtime::Tuple& wanted,
                ProbeBuilder& probe) {
  if (key_expr->kind == SymKind::kTupleExpr) {
    if (key_expr->operands.size() != wanted.size()) return false;
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const auto f = pkt_field_of(key_expr->operands[i]);
      if (!f) return false;
      if (!probe.set_field(*f, wanted[i])) return false;
    }
    return true;
  }
  if (const auto f = pkt_field_of(key_expr); f && wanted.size() == 1) {
    return probe.set_field(*f, wanted[0]);
  }
  return false;
}

}  // namespace

std::string to_string(CaseStatus s) {
  switch (s) {
    case CaseStatus::kPassed: return "passed";
    case CaseStatus::kFailed: return "failed";
    case CaseStatus::kUncovered: return "uncovered";
    case CaseStatus::kConfigSkip: return "config-skip";
  }
  return "?";
}

std::string ComplianceReport::summary() const {
  std::ostringstream os;
  os << passed << " passed, " << failed << " failed, " << uncovered
     << " uncovered, " << config_skipped << " config-skipped (of "
     << cases.size() << " entries)";
  return os.str();
}

ComplianceReport run_compliance(const ir::Module& module,
                                const model::Model& model) {
  ComplianceReport report;
  const auto store = model::initial_store(module);
  const symex::ConcreteEnv cfg_env = store_env(store);

  for (std::size_t ei = 0; ei < model.entries.size(); ++ei) {
    const model::ModelEntry& entry = model.entries[ei];
    TestCase tc;
    tc.entry_index = static_cast<int>(ei);

    // Entry must belong to the deployed configuration.
    bool config_ok = true;
    for (const auto& c : entry.config_match) {
      const auto v = try_const(c, cfg_env);
      if (!v || *v == 0) config_ok = false;
    }
    if (!config_ok) {
      tc.status = CaseStatus::kConfigSkip;
      tc.note = "entry belongs to a different configuration table";
      report.cases.push_back(std::move(tc));
      ++report.config_skipped;
      continue;
    }

    // Build the probe from the flow match.
    ProbeBuilder probe(cfg_env);
    bool ok = true;
    for (const auto& c : entry.flow_match) {
      if (!probe.apply(c)) {
        ok = false;
        tc.note = to_statusless_note("unsupported flow constraint: " +
                                     symex::to_string(*c));
        break;
      }
    }

    // State setup via priming.
    std::vector<MembershipNeed> needs;
    if (ok && !analyze_state_match(entry.state_match, needs)) {
      ok = false;
      tc.note = "state match too complex to synthesize";
    }
    std::vector<netsim::Packet> priming;
    if (ok && !needs.empty()) {
      for (const auto& need : needs) {
        // Find an inserter entry for this map whose own state match has
        // no positive membership requirement.
        bool primed = false;
        for (const auto& other : model.entries) {
          const auto it = other.state_action.find(need.map_name);
          if (it == other.state_action.end()) continue;
          if (it->second->kind != SymKind::kMapStore) continue;
          std::vector<MembershipNeed> sub;
          if (!analyze_state_match(other.state_match, sub) || !sub.empty()) {
            continue;
          }
          bool other_cfg_ok = true;
          for (const auto& c : other.config_match) {
            const auto v = try_const(c, cfg_env);
            if (!v || *v == 0) other_cfg_ok = false;
          }
          if (!other_cfg_ok) continue;

          ProbeBuilder prime(cfg_env);
          bool prime_ok = true;
          for (const auto& c : other.flow_match) {
            if (!prime.apply(c)) {
              prime_ok = false;
              break;
            }
          }
          if (!prime_ok) continue;

          // Key the priming packet inserts.
          const netsim::Packet prime_pkt = prime.packet();
          symex::ConcreteEnv pk_env = cfg_env;
          pk_env.input_packet = &prime_pkt;
          pk_env.var = [&store, &prime_pkt](const std::string& name) {
            if (name.starts_with("pkt.")) {
              const std::string f = name.substr(4);
              if (f == "__payload") return runtime::Value(runtime::Int(0));
              if (f == "in_port") {
                return runtime::Value(runtime::Int(prime_pkt.in_port));
              }
              return runtime::Value(runtime::get_packet_field(prime_pkt, f));
            }
            const auto it2 = store.find(name);
            if (it2 == store.end()) throw std::out_of_range(name);
            return it2->second;
          };
          try {
            const runtime::Value inserted_key =
                symex::eval_concrete(it->second->operands[1], pk_env);
            const runtime::Tuple key = runtime::to_key(inserted_key);
            if (!invert_key(need.key_expr, key, probe)) continue;
          } catch (const std::exception&) {
            continue;
          }
          priming.push_back(prime_pkt);
          primed = true;
          break;
        }
        if (!primed) {
          ok = false;
          tc.note = "no priming entry found for map '" + need.map_name + "'";
          break;
        }
      }
    }

    if (!ok) {
      tc.status = CaseStatus::kUncovered;
      report.cases.push_back(std::move(tc));
      ++report.uncovered;
      continue;
    }

    // Execute the sequence against both sides.
    tc.sequence = priming;
    tc.sequence.push_back(probe.packet());

    runtime::Interpreter orig(module);
    model::ModelInterpreter synth(model, store);
    bool behaviour_match = true;
    int matched_entry = -1;
    for (std::size_t i = 0; i < tc.sequence.size(); ++i) {
      const runtime::Output oo = orig.process(tc.sequence[i]);
      const model::ModelOutput mo = synth.process(tc.sequence[i]);
      if (i + 1 == tc.sequence.size()) matched_entry = mo.matched_entry;
      if (oo.sent.size() != mo.sent.size()) {
        behaviour_match = false;
        break;
      }
      for (std::size_t k = 0; k < oo.sent.size(); ++k) {
        if (!(oo.sent[k].first == mo.sent[k].first) ||
            oo.sent[k].second != mo.sent[k].second) {
          behaviour_match = false;
          break;
        }
      }
    }

    if (behaviour_match && matched_entry == tc.entry_index) {
      tc.status = CaseStatus::kPassed;
      ++report.passed;
    } else if (!behaviour_match) {
      tc.status = CaseStatus::kFailed;
      tc.note = "original and model diverged on the generated sequence";
      ++report.failed;
    } else {
      tc.status = CaseStatus::kUncovered;
      tc.note = "probe matched entry " + std::to_string(matched_entry) +
                " instead (overlapping matches)";
      ++report.uncovered;
    }
    report.cases.push_back(std::move(tc));
  }
  return report;
}

}  // namespace nfactor::verify
