// BUZZ-style compliance testing (paper §4 "Testing"): use the
// synthesized model to *generate* concrete test packets — including the
// multi-step sequences needed to set up state (a priming packet that
// installs a NAT/connection entry, then the probe that exercises the
// state-dependent entry) — and run them against the original NF,
// checking the observed behaviour matches the model entry's action.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"
#include "model/model.h"
#include "netsim/packet.h"

namespace nfactor::verify {

enum class CaseStatus : std::uint8_t {
  kPassed,       // generated, ran, behaviour matched the entry
  kFailed,       // generated, ran, behaviour diverged
  kUncovered,    // could not synthesize inputs for this entry
  kConfigSkip,   // entry's config table is not the deployed config
};

std::string to_string(CaseStatus s);

struct TestCase {
  int entry_index = -1;
  std::vector<netsim::Packet> sequence;  // priming packets + final probe
  CaseStatus status = CaseStatus::kUncovered;
  std::string note;
};

struct ComplianceReport {
  std::vector<TestCase> cases;
  int passed = 0;
  int failed = 0;
  int uncovered = 0;
  int config_skipped = 0;

  bool ok() const { return failed == 0; }
  std::string summary() const;
};

/// Generate one test per model entry and execute it against the original
/// program (concrete runtime), cross-checked with the model interpreter.
ComplianceReport run_compliance(const ir::Module& module,
                                const model::Model& model);

}  // namespace nfactor::verify
