// Concrete packet synthesis from symbolic match constraints. The
// ProbeBuilder inverts the constraint shapes synthesized models produce
// (field-vs-constant comparisons, TCP flag-mask tests, payload literals,
// small boolean combinations) into one concrete netsim::Packet that
// satisfies them — the shared substrate of BUZZ-style compliance test
// generation (verify/compliance.cpp) and topology witness
// materialization (verify/witness.cpp).
//
// The builder is best-effort by design: apply() returns false on shapes
// it cannot invert, and callers are expected to *verify* the finished
// packet by concretely evaluating the full constraint set — the builder
// proposes, eval_concrete disposes.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "netsim/packet.h"
#include "runtime/value.h"
#include "symex/concrete_eval.h"
#include "symex/expr.h"

namespace nfactor::verify {

/// Environment for evaluating the non-packet side of match constraints
/// against a concrete store (deployed configuration + current state).
/// The returned env borrows `store` — it must outlive the env.
symex::ConcreteEnv store_env(const std::map<std::string, runtime::Value>& store);

/// The packet field a bare "pkt.<field>" symbol refers to, if `e` is one.
std::optional<std::string> pkt_field_of(const symex::SymRef& e);

/// Evaluate an expression that should not depend on the packet; nullopt
/// when it throws or yields a non-scalar.
std::optional<runtime::Int> try_const(const symex::SymRef& e,
                                      const symex::ConcreteEnv& env);

class ProbeBuilder {
 public:
  /// `env` resolves state/config symbols appearing on the constant side
  /// of constraints (it is copied; the closures it holds must stay valid
  /// for the builder's lifetime).
  explicit ProbeBuilder(const symex::ConcreteEnv& env);

  netsim::Packet packet() const { return probe_; }

  /// Apply one match constraint; false = unsupported shape (the probe is
  /// left partially updated — callers must re-verify the full set).
  bool apply(const symex::SymRef& c, bool polarity = true);

  /// Set one field by DSL name; handles the pseudo-fields in_port/len.
  bool set_field(const std::string& field, runtime::Int v);

 private:
  netsim::Packet probe_;
  symex::ConcreteEnv env_;
};

}  // namespace nfactor::verify
