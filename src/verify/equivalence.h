// §5 "Accuracy": checks that the synthesized model is logically
// equivalent to the original program —
//  (a) random differential testing: the same packet stream through the
//      concrete runtime and the model interpreter must produce identical
//      outputs and identical output-impacting state;
//  (b) path-set comparison: the forwarding-action signatures of the
//      original program's symbolic paths and the slice's symbolic paths
//      must coincide.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "model/model.h"
#include "netsim/packet.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"

namespace nfactor::verify {

struct DiffResult {
  int packets = 0;
  int mismatches = 0;
  int original_sent = 0;
  int model_sent = 0;
  std::vector<std::string> details;  // first few mismatch descriptions

  /// First output mismatch, for provenance attribution: the model entry
  /// the interpreter matched on the diverging packet (-1 = the default
  /// drop applied) and that packet's rendering. Only meaningful when
  /// has_first_mismatch — end-of-stream state divergences bump
  /// `mismatches` without setting it.
  bool has_first_mismatch = false;
  int first_mismatch_entry = -1;
  std::string first_mismatch_packet;

  bool ok() const { return mismatches == 0; }
};

/// Run `packets` through both sides, comparing emitted packets (fields +
/// port, in order) after every input and the oisVar state at the end.
DiffResult differential_test(const ir::Module& module,
                             const statealyzer::Result& cats,
                             const model::Model& model,
                             std::span<const netsim::Packet> packets);

/// Forwarding-action signature of one symbolic path: which fields get
/// rewritten to what (canonical keys), the output port, and the oisVar
/// updates — ignoring conditions over forwarding-irrelevant code.
std::string action_signature(const symex::ExecPath& path,
                             const statealyzer::Result& cats);

/// The deduplicated action-signature sets of two path collections.
struct PathSetComparison {
  std::vector<std::string> only_in_a;
  std::vector<std::string> only_in_b;
  std::size_t common = 0;
  bool equal() const { return only_in_a.empty() && only_in_b.empty(); }
};

PathSetComparison compare_action_sets(const std::vector<symex::ExecPath>& a,
                                      const std::vector<symex::ExecPath>& b,
                                      const statealyzer::Result& cats);

/// Concrete symbolic bindings for every config scalar that is foldable
/// from its initializer (mirrors lint::config_env, so this is exactly
/// the substitution the simplify pass's fold_config tier performs).
std::map<std::string, symex::SymRef> config_bindings(const ir::Module& m);

/// Equivalence of an unsimplified path set `full` against a
/// config-folded path set `specialized`: substitute `bindings` into
/// every `full` path, drop paths whose constraints become unsatisfiable
/// (those are the arms fold_config pruned), and compare the surviving
/// action signatures. `cats_full`/`cats_spec` are each side's own
/// StateAlyzer results.
PathSetComparison compare_action_sets_under_config(
    const std::vector<symex::ExecPath>& full,
    const std::vector<symex::ExecPath>& specialized,
    const statealyzer::Result& cats_full,
    const statealyzer::Result& cats_spec,
    const std::map<std::string, symex::SymRef>& bindings);

}  // namespace nfactor::verify
