#include "verify/probe.h"

#include <stdexcept>

namespace nfactor::verify {

using symex::SymKind;
using symex::SymRef;

symex::ConcreteEnv store_env(const std::map<std::string, runtime::Value>& store) {
  symex::ConcreteEnv env;
  env.var = [&store](const std::string& name) -> runtime::Value {
    const auto it = store.find(name);
    if (it == store.end()) throw std::out_of_range("unknown symbol " + name);
    return it->second;
  };
  env.map_base = [&store](const std::string& name) -> const runtime::MapV* {
    const auto it = store.find(name);
    if (it == store.end() || !it->second.is_map()) return nullptr;
    return &it->second.as_map();
  };
  return env;
}

std::optional<std::string> pkt_field_of(const SymRef& e) {
  if (e->kind == SymKind::kVar && e->var_class == symex::VarClass::kPkt &&
      e->str_val.starts_with("pkt.")) {
    return e->str_val.substr(4);
  }
  return std::nullopt;
}

std::optional<runtime::Int> try_const(const SymRef& e,
                                      const symex::ConcreteEnv& env) {
  try {
    const runtime::Value v = symex::eval_concrete(e, env);
    if (v.is_int()) return v.as_int();
    if (v.is_bool()) return v.as_bool() ? 1 : 0;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

ProbeBuilder::ProbeBuilder(const symex::ConcreteEnv& env) : env_(env) {
  // Neutral default probe.
  probe_.ip_src = 0x0A000009;  // 10.0.0.9
  probe_.ip_dst = 0x03030303;
  probe_.sport = 1234;
  probe_.dport = 80;
  probe_.tcp_flags = netsim::kAck;
}

bool ProbeBuilder::apply(const SymRef& c, bool polarity) {
  if (c->kind == SymKind::kUn && c->un_op == lang::UnOp::kNot) {
    return apply(c->operands[0], !polarity);
  }
  if (c->kind == SymKind::kCall && c->str_val == "payload_contains") {
    const SymRef& needle = c->operands[1];
    if (needle->kind != SymKind::kConstStr) return false;
    if (polarity) {
      probe_.payload.assign(needle->str_val.begin(), needle->str_val.end());
    } else {
      probe_.payload.clear();
    }
    return true;
  }
  if (c->kind != SymKind::kBin) return false;
  using lang::BinOp;
  const BinOp op = c->bin_op;
  const SymRef& a = c->operands[0];
  const SymRef& b = c->operands[1];

  if (op == BinOp::kAnd && polarity) {
    return apply(a, true) && apply(b, true);
  }
  if (op == BinOp::kOr && polarity) {
    return apply(a, true);  // satisfy the first disjunct
  }
  if (op == BinOp::kOr && !polarity) {
    return apply(a, false) && apply(b, false);
  }

  // Flag-mask tests: (pkt.tcp_flags & m) ==/!= 0.
  if ((op == BinOp::kEq || op == BinOp::kNe) &&
      a->kind == SymKind::kBin && a->bin_op == BinOp::kBitAnd) {
    const auto field = pkt_field_of(a->operands[0]);
    const auto mask = try_const(a->operands[1], env_);
    const auto rhs = try_const(b, env_);
    if (field && *field == "tcp_flags" && mask && rhs && *rhs == 0) {
      const bool want_set = (op == BinOp::kNe) == polarity;
      if (want_set) {
        probe_.tcp_flags |= static_cast<std::uint8_t>(*mask);
      } else {
        probe_.tcp_flags &= static_cast<std::uint8_t>(~*mask);
      }
      return true;
    }
    return false;
  }

  // field OP const-side
  auto field = pkt_field_of(a);
  SymRef other = b;
  bool flipped = false;
  if (!field) {
    field = pkt_field_of(b);
    other = a;
    flipped = true;
  }
  if (!field) {
    // Constraint not over the packet (pure config/state residue):
    // verify it holds under the deployed config.
    const auto v = try_const(c, env_);
    return v.has_value() && ((*v != 0) == polarity);
  }
  const auto val = try_const(other, env_);
  if (!val) return false;

  BinOp eff = op;
  if (!polarity) {
    switch (op) {
      case BinOp::kEq: eff = BinOp::kNe; break;
      case BinOp::kNe: eff = BinOp::kEq; break;
      case BinOp::kLt: eff = BinOp::kGe; break;
      case BinOp::kGe: eff = BinOp::kLt; break;
      case BinOp::kGt: eff = BinOp::kLe; break;
      case BinOp::kLe: eff = BinOp::kGt; break;
      default: return false;
    }
  }
  if (flipped) {
    switch (eff) {
      case BinOp::kLt: eff = BinOp::kGt; break;
      case BinOp::kGt: eff = BinOp::kLt; break;
      case BinOp::kLe: eff = BinOp::kGe; break;
      case BinOp::kGe: eff = BinOp::kLe; break;
      default: break;
    }
  }
  switch (eff) {
    case BinOp::kEq: return set_field(*field, *val);
    case BinOp::kNe: return set_field(*field, *val + 1);
    case BinOp::kLt: return set_field(*field, *val - 1);
    case BinOp::kLe: return set_field(*field, *val);
    case BinOp::kGt: return set_field(*field, *val + 1);
    case BinOp::kGe: return set_field(*field, *val);
    default: return false;
  }
}

bool ProbeBuilder::set_field(const std::string& field, runtime::Int v) {
  try {
    runtime::set_packet_field(probe_, field, v);
    return true;
  } catch (const std::exception&) {
    if (field == "in_port") {
      probe_.in_port = static_cast<int>(v);
      return true;
    }
    if (field == "len") {
      if (v < 0 || v > 1400) return false;
      probe_.payload.assign(static_cast<std::size_t>(v), 0x61);
      return true;
    }
    return false;
  }
}

}  // namespace nfactor::verify
