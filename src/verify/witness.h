// Concrete witnesses for topology query verdicts. The solver behind
// run_query is sound for pruning but has no model extraction, so a SAT
// verdict is backed the way BUZZ backs compliance cases: ProbeBuilder
// inverts the path condition into a candidate packet, the full
// constraint set is then *verified* by concrete evaluation against
// every instance's initial store, and the surviving packet is replayed
// hop-by-hop through three independent backends — the netsim wire codec
// (encode/decode round-trip), the model interpreter, and the compiled
// dataplane engine — which must agree byte-for-byte at every hop. A
// reachability verdict with a consistent replay is a proof, not an
// over-approximation.
//
// Materialization is best-effort by design: paths whose condition needs
// non-initial state (positive map membership on a fresh instance) or
// constraint shapes the prober cannot invert yield no witness; callers
// walk the deterministic path list until one materializes (find_witness).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "verify/topology.h"

namespace nfactor::verify {

/// A concrete packet realizing one symbolic path of a query result.
struct Witness {
  netsim::Packet ingress;      ///< injected packet (in_port set)
  std::vector<TopoHop> hops;   ///< the path skeleton being realized
  std::string from;            ///< ingress point name
  std::string to;              ///< egress point name
};

struct ReplayedHop {
  TopoHop hop;
  netsim::Packet input;   ///< packet entering the instance
  netsim::Packet output;  ///< packet the instance emitted (send hop.send)
  int out_port = -1;      ///< concrete emission port
};

/// Outcome of the three-backend replay.
struct ReplayReport {
  bool consistent = false;
  std::vector<ReplayedHop> hops;  ///< hops completed before divergence
  netsim::Packet egress;          ///< final emitted packet (when consistent)
  std::string detail;             ///< first divergence, empty when consistent
};

/// Invert `path`'s condition into a concrete ingress packet and verify
/// the full constraint set concretely against the instances' initial
/// (pinned) stores. nullopt when the path is not concretizable.
std::optional<Witness> materialize_witness(const Topology& topo,
                                           const Query& q,
                                           const TopoPath& path);

/// Replay a witness hop-by-hop: per hop the wire codec round-trips the
/// input frame, and ModelInterpreter and DataplaneEngine (compiled with
/// the instance's pinned store) must match the expected entry and emit
/// byte-identical packets on the expected port.
ReplayReport replay_witness(const Topology& topo, const Witness& w);

/// First path of `result` (deterministic order) that materializes AND
/// replays consistently. `replay_out` (optional) receives its replay.
std::optional<Witness> find_witness(const Topology& topo,
                                    const QueryResult& result,
                                    ReplayReport* replay_out = nullptr);

/// Write the witness as a netsim trace: one frame per hop (the packet
/// entering that instance, tagged with its ingress port) plus the final
/// egress packet. Round-trips through netsim::read_trace.
void write_witness_trace(const std::string& path, const ReplayReport& replay);

/// Deterministic `nfactor-topology-v1` JSON for a query result,
/// optionally including a replayed witness (pass nullptr for none).
/// Byte-identical at any QueryOptions.jobs width: schedule-dependent
/// stats (cache hit tallies) are excluded.
std::string topology_json(const Topology& topo, const QueryResult& result,
                          const Witness* witness, const ReplayReport* replay);

}  // namespace nfactor::verify
