#include "verify/witness.h"

#include <sstream>
#include <stdexcept>

#include "dataplane/engine.h"
#include "model/interp.h"
#include "netsim/trace.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "verify/probe.h"

namespace nfactor::verify {

namespace {

/// Concrete initial store of one instance, with its deployment pins
/// applied — the store both replay backends run against, and (prefixed)
/// the store witness constraints are verified under.
std::map<std::string, runtime::Value> instance_store(const TopoNode& n) {
  auto store = model::initial_store(*n.module);
  for (const auto& [name, value] : n.cfg) {
    store[name] = runtime::Value(runtime::Int(value));
  }
  return store;
}

/// Env resolving "<id>$"-prefixed instance symbols from `combined` and
/// pkt.* symbols from `pkt`.
symex::ConcreteEnv packet_env(
    const std::map<std::string, runtime::Value>& combined,
    const netsim::Packet& pkt) {
  symex::ConcreteEnv env = store_env(combined);
  env.input_packet = &pkt;
  env.var = [&combined, &pkt](const std::string& name) -> runtime::Value {
    if (name.starts_with("pkt.")) {
      const std::string f = name.substr(4);
      if (f == "__payload") return runtime::Value(runtime::Int(0));
      if (f == "in_port") return runtime::Value(runtime::Int(pkt.in_port));
      return runtime::Value(runtime::get_packet_field(pkt, f));
    }
    const auto it = combined.find(name);
    if (it == combined.end()) throw std::out_of_range("unknown symbol " + name);
    return it->second;
  };
  return env;
}

/// Wire-codec leg: the frame must survive encode -> decode unchanged
/// (in_port is harness metadata, not a wire field — carried separately,
/// exactly as the trace format does).
bool wire_roundtrip_ok(const netsim::Packet& p) {
  const std::vector<std::uint8_t> wire = netsim::encode(p);
  std::optional<netsim::Packet> dec = netsim::decode(wire);
  if (!dec) return false;
  dec->in_port = p.in_port;
  return *dec == p;
}

}  // namespace

std::optional<Witness> materialize_witness(const Topology& topo,
                                           const Query& q,
                                           const TopoPath& path) {
  // Every instance's initial store, "<id>$"-prefixed into one namespace —
  // the same naming the traversal gave the path constraints.
  std::map<std::string, runtime::Value> combined;
  for (const auto& n : topo.nodes) {
    for (auto& [key, value] : instance_store(n)) {
      combined[n.id + "$" + key] = std::move(value);
    }
  }

  // Propose: invert what the prober understands; leftovers are caught by
  // the verification pass below.
  ProbeBuilder probe(store_env(combined));
  for (const auto& c : path.constraints) {
    (void)probe.apply(c);
  }
  netsim::Packet pkt = probe.packet();
  if (const TopoPoint* in = topo.ingress_point(q.from); in && in->port >= 0) {
    pkt.in_port = in->port;
  }
  // Non-TCP frames carry no TCP header: drop the probe's TCP-only
  // defaults to the decoder's values so the round-trip compares equal.
  // If the path really needed those fields alongside a non-TCP proto,
  // the concrete verification below rejects it.
  if (pkt.ip_proto != static_cast<std::uint8_t>(netsim::IpProto::kTcp)) {
    pkt.tcp_seq = 0;
    pkt.tcp_ack = 0;
    pkt.tcp_flags = 0;
    pkt.tcp_win = netsim::Packet{}.tcp_win;
  }

  // The witness must be realizable as wire bytes, or the netsim replay
  // leg could never carry it.
  if (!wire_roundtrip_ok(pkt)) return std::nullopt;

  // Dispose: every path constraint must hold concretely for this packet
  // under the initial stores. Paths needing non-initial state (positive
  // membership on a fresh map) or mis-inverted constraints die here.
  const symex::ConcreteEnv env = packet_env(combined, pkt);
  for (const auto& c : path.constraints) {
    const auto v = try_const(c, env);
    if (!v || *v == 0) return std::nullopt;
  }

  Witness w;
  w.ingress = pkt;
  w.hops = path.hops;
  w.from = q.from;
  w.to = q.to;
  return w;
}

ReplayReport replay_witness(const Topology& topo, const Witness& w) {
  OBS_SPAN("verify.topology.replay");
  ReplayReport rep;
  netsim::Packet cur = w.ingress;
  try {
    for (const TopoHop& hop : w.hops) {
      const TopoNode* node = topo.node(hop.node);
      if (node == nullptr) {
        rep.detail = "unknown instance '" + hop.node + "'";
        return rep;
      }
      if (hop.in_port >= 0) cur.in_port = hop.in_port;
      const std::string at = "at " + hop.node + ": ";

      if (!wire_roundtrip_ok(cur)) {
        rep.detail = at + "wire codec round-trip failed";
        return rep;
      }

      // Reference leg: the model interpreter on the instance's store.
      const auto store = instance_store(*node);
      model::ModelInterpreter interp(*node->model, store);
      const model::ModelOutput mo = interp.process(cur);
      if (mo.matched_entry != hop.entry) {
        rep.detail = at + "model matched entry " +
                     std::to_string(mo.matched_entry) + ", path expected " +
                     std::to_string(hop.entry);
        return rep;
      }
      if (hop.send < 0 ||
          static_cast<std::size_t>(hop.send) >= mo.sent.size()) {
        rep.detail = at + "model emitted " + std::to_string(mo.sent.size()) +
                     " packets, path expected send " + std::to_string(hop.send);
        return rep;
      }

      // Compiled leg: the dataplane engine must agree exactly.
      dataplane::CompileOptions copts;
      copts.bindings = &store;
      const dataplane::CompiledTable table =
          dataplane::compile(*node->model, copts);
      dataplane::DataplaneEngine engine(table, store);
      const model::ModelOutput dp = engine.process(cur);
      if (dp.matched_entry != mo.matched_entry ||
          dp.sent.size() != mo.sent.size()) {
        rep.detail = at + "dataplane diverged from the model interpreter";
        return rep;
      }
      for (std::size_t k = 0; k < mo.sent.size(); ++k) {
        if (!(dp.sent[k].first == mo.sent[k].first) ||
            dp.sent[k].second != mo.sent[k].second ||
            netsim::encode(dp.sent[k].first) !=
                netsim::encode(mo.sent[k].first)) {
          rep.detail = at + "dataplane send " + std::to_string(k) +
                       " differs from the model interpreter";
          return rep;
        }
      }

      const auto& [out_pkt, out_port] = mo.sent[static_cast<std::size_t>(hop.send)];
      if (hop.out_port >= 0 && out_port != hop.out_port) {
        rep.detail = at + "emitted on port " + std::to_string(out_port) +
                     ", path expected " + std::to_string(hop.out_port);
        return rep;
      }

      ReplayedHop rh;
      rh.hop = hop;
      rh.input = cur;
      rh.output = out_pkt;
      rh.out_port = out_port;
      rep.hops.push_back(std::move(rh));
      cur = out_pkt;
    }
  } catch (const std::exception& ex) {
    rep.detail = std::string("replay backend threw: ") + ex.what();
    return rep;
  }
  rep.egress = cur;
  rep.consistent = true;
  return rep;
}

std::optional<Witness> find_witness(const Topology& topo,
                                    const QueryResult& result,
                                    ReplayReport* replay_out) {
  for (const TopoPath& path : result.paths) {
    auto w = materialize_witness(topo, result.query, path);
    if (!w) continue;
    ReplayReport rep = replay_witness(topo, *w);
    if (!rep.consistent) continue;
    OBS_COUNT("verify.topology.witnesses");
    if (replay_out != nullptr) *replay_out = std::move(rep);
    return w;
  }
  return std::nullopt;
}

void write_witness_trace(const std::string& path, const ReplayReport& replay) {
  std::vector<netsim::Packet> frames;
  frames.reserve(replay.hops.size() + 1);
  for (const auto& h : replay.hops) frames.push_back(h.input);
  if (replay.consistent) {
    netsim::Packet egress = replay.egress;
    egress.in_port = 0;  // the trace tag is an *ingress* port; none here
    frames.push_back(std::move(egress));
  }
  netsim::write_trace(path, frames);
}

// ---- JSON -----------------------------------------------------------------

namespace {

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

void append_hop(std::ostringstream& os, const TopoHop& h) {
  os << "{\"node\":\"" << obs::json_escape(h.node)
     << "\",\"entry\":" << h.entry << ",\"send\":" << h.send
     << ",\"in_port\":" << h.in_port << ",\"out_port\":" << h.out_port << "}";
}

void append_packet(std::ostringstream& os, const netsim::Packet& p) {
  os << "{\"summary\":\"" << obs::json_escape(netsim::to_string(p))
     << "\",\"in_port\":" << p.in_port << ",\"wire\":\""
     << hex(netsim::encode(p)) << "\"}";
}

}  // namespace

std::string topology_json(const Topology& topo, const QueryResult& result,
                          const Witness* witness, const ReplayReport* replay) {
  std::ostringstream os;
  os << "{\"format\":\"nfactor-topology-v1\",";
  os << "\"topology\":{\"nodes\":" << topo.nodes.size()
     << ",\"edges\":" << topo.edges.size()
     << ",\"ingress\":" << topo.ingress.size()
     << ",\"egress\":" << topo.egress.size() << "},";

  const Query& q = result.query;
  os << "\"query\":{\"kind\":\"" << to_string(q.kind) << "\",\"from\":\""
     << obs::json_escape(q.from) << "\",\"to\":\"" << obs::json_escape(q.to)
     << "\"";
  if (!q.via.empty()) os << ",\"via\":\"" << obs::json_escape(q.via) << "\"";
  if (!q.where_text.empty()) {
    os << ",\"where\":\"" << obs::json_escape(q.where_text) << "\"";
  }
  os << "},";

  const bool replayed =
      witness != nullptr && replay != nullptr && replay->consistent;
  os << "\"verdict\":{\"holds\":" << (result.holds ? "true" : "false")
     << ",\"sat\":" << (result.sat ? "true" : "false") << ",\"exhaustive\":"
     << (result.stats.truncated ? "false" : "true")
     << ",\"witness_replayed\":" << (replayed ? "true" : "false") << "},";

  // Schedule-dependent tallies (cache hits/misses) are deliberately
  // excluded: this document is byte-identical at any --jobs width.
  os << "\"stats\":{\"frames\":" << result.stats.frames
     << ",\"infeasible\":" << result.stats.infeasible
     << ",\"cycle_pruned\":" << result.stats.cycle_pruned
     << ",\"solver_queries\":" << result.stats.solver_queries
     << ",\"paths\":" << result.paths.size() << "},";

  os << "\"paths\":[";
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"hops\":[";
    for (std::size_t k = 0; k < result.paths[i].hops.size(); ++k) {
      if (k != 0) os << ",";
      append_hop(os, result.paths[i].hops[k]);
    }
    os << "]}";
  }
  os << "],";

  os << "\"witness\":";
  if (!replayed) {
    os << "null";
  } else {
    os << "{\"from\":\"" << obs::json_escape(witness->from) << "\",\"to\":\""
       << obs::json_escape(witness->to) << "\",\"replay\":\"consistent\","
       << "\"hops\":[";
    for (std::size_t i = 0; i < replay->hops.size(); ++i) {
      const ReplayedHop& h = replay->hops[i];
      if (i != 0) os << ",";
      os << "{\"node\":\"" << obs::json_escape(h.hop.node)
         << "\",\"entry\":" << h.hop.entry << ",\"out_port\":" << h.out_port
         << ",\"input\":";
      append_packet(os, h.input);
      os << "}";
    }
    os << "],\"egress\":";
    append_packet(os, replay->egress);
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace nfactor::verify
