#include "verify/chain.h"

#include <algorithm>
#include <map>

namespace nfactor::verify {

IoSpace io_space(const model::Model& m) {
  IoSpace io;
  for (const auto& f : m.pkt_fields_read) {
    io.fields_matched.insert(f);  // already "pkt.x" form
  }
  for (const auto& e : m.entries) {
    for (const auto& a : e.flow_action) {
      for (const auto& [field, expr] : a.rewrites) {
        (void)expr;
        io.fields_rewritten.insert("pkt." + field);
      }
    }
  }
  return io;
}

OrderAdvice advise_order(
    const std::vector<std::pair<std::string, const model::Model*>>& nfs) {
  OrderAdvice advice;
  const std::size_t n = nfs.size();
  std::vector<IoSpace> spaces;
  spaces.reserve(n);
  for (const auto& [name, m] : nfs) {
    (void)name;
    spaces.push_back(io_space(*m));
  }

  // matcher-before-rewriter edges.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<int> indeg(static_cast<int>(n), 0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      for (const auto& field : spaces[a].fields_matched) {
        if (spaces[b].fields_rewritten.count(field)) {
          // Skip if a also rewrites the field itself (it re-translates
          // anyway) — both orders change semantics; prefer the matcher
          // first, but don't double-add edges.
          succ[a].push_back(b);
          ++indeg[b];
          advice.constraints.push_back({nfs[a].first, nfs[b].first, field});
          break;  // one edge per pair is enough
        }
      }
    }
  }

  // Kahn's algorithm, stable w.r.t. input order.
  std::vector<char> placed(n, 0);
  for (std::size_t placed_count = 0; placed_count < n;) {
    bool progressed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i] || indeg[i] != 0) continue;
      placed[i] = 1;
      ++placed_count;
      progressed = true;
      advice.order.push_back(nfs[i].first);
      for (const std::size_t s : succ[i]) --indeg[s];
    }
    if (!progressed) {
      advice.has_cycle = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (!placed[i]) advice.order.push_back(nfs[i].first);
      }
      break;
    }
  }
  return advice;
}

}  // namespace nfactor::verify
