// Network-scale topology verification (ROADMAP item: beyond service
// chains). A Topology is a directed graph of NF *model instances* —
// nodes carry a synthesized model plus a pinned deployment configuration
// and their own state namespace, edges are port-to-port links — over
// which symbolic flows are injected at ingress points and traced to
// egress points. Queries (reachability, isolation, waypoint) are
// answered by a deterministic parallel path enumeration that reuses the
// shared solver cache, and every SAT verdict can be backed by a concrete
// witness packet replayed hop-by-hop through the model interpreter, the
// wire codec and the compiled dataplane (verify/witness.h).
//
// Instances never alias state: every state/config symbol of instance
// `id` is renamed to "<id>$<symbol>" (symex::prefix_symbols), the same
// discipline verify/hsa.cpp applies per chain hop. Paths are *simple*
// (no instance revisited) — a second visit would see the instance's
// fresh initial state again, which is unsound for a single packet — and
// bounded by QueryOptions.max_hops.
//
// Determinism: queries expand the frontier level-synchronously; frames
// within a level are processed by a worker pool at `jobs` width but
// their children and delivered paths are collected in frame index
// order, and solver verdicts are pure functions of the constraint set.
// The result (paths, verdicts, JSON) is byte-identical at any width;
// only cache hit/miss tallies are schedule-dependent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "model/model.h"
#include "symex/expr.h"
#include "symex/solver.h"

namespace nfactor::verify {

/// One NF model instance. `id` is the instance name (also its state
/// prefix, "<id>$"); `nf` the model's NF name for display. The model
/// and module pointers are borrowed and must outlive the topology.
struct TopoNode {
  std::string id;
  std::string nf;
  const model::Model* model = nullptr;
  const ir::Module* module = nullptr;
  /// Deployment pins: config scalar -> concrete value, overriding the
  /// module initializer. Applied symbolically during traversal and to
  /// the concrete stores during witness replay.
  std::map<std::string, std::int64_t> cfg;
};

/// Directed port-to-port link. from_port -1 = wildcard: matches any
/// egress port of `from` without an exact-match edge or egress point.
struct TopoEdge {
  std::string from;
  int from_port = -1;
  std::string to;
  int to_port = 0;
};

/// Named external attachment point. For ingress, port is the in_port
/// packets carry when injected (-1 = unconstrained / symbolic). For
/// egress, the instance port whose emissions exit the network at this
/// point (-1 = any otherwise-unconnected port).
struct TopoPoint {
  std::string name;
  std::string node;
  int port = -1;
};

struct Topology {
  std::vector<TopoNode> nodes;
  std::vector<TopoEdge> edges;
  std::vector<TopoPoint> ingress;
  std::vector<TopoPoint> egress;

  const TopoNode* node(const std::string& id) const;
  const TopoPoint* ingress_point(const std::string& name) const;
  const TopoPoint* egress_point(const std::string& name) const;
  /// Link for an emission on (from, port): exact match first, then the
  /// node's wildcard edge. nullptr = port dangles (packet leaves the
  /// modeled network and is lost).
  const TopoEdge* edge_from(const std::string& from, int port) const;
  /// First egress point covering (node, port), declaration order.
  const TopoPoint* egress_at(const std::string& node_id, int port) const;

  /// Structural problems (duplicate ids, dangling endpoints, missing
  /// models, ...). Empty = well-formed.
  std::vector<std::string> validate() const;
};

/// Resolves an NF name to its synthesized model + module; the returned
/// pointers must outlive the parsed Topology. Used by parse_topology.
struct NodeModels {
  const model::Model* model = nullptr;
  const ir::Module* module = nullptr;
};
using ModelResolver = std::function<NodeModels(const std::string& nf)>;

/// Parse the .topo text format (docs/verification.md):
///   node <id> <nf> [cfg NAME=INT]...
///   edge <a>:<port|*> -> <b>:<port>
///   ingress <name> -> <node>:<port|*>
///   egress <name> <- <node>:<port|*>
/// '#' starts a comment. Throws std::runtime_error with a line-numbered
/// message on malformed input or an NF the resolver cannot supply.
Topology parse_topology(const std::string& text, const ModelResolver& resolve);

// ---- Queries --------------------------------------------------------------

enum class QueryKind : std::uint8_t {
  kReach,     ///< holds iff some packet from `from` is delivered at `to`
  kIsolate,   ///< holds iff NO packet from `from` is delivered at `to`
  kWaypoint,  ///< holds iff every delivered from->to path traverses `via`
};

struct Query {
  QueryKind kind = QueryKind::kReach;
  std::string from;  ///< ingress point name
  std::string to;    ///< egress point name
  std::string via;   ///< waypoint instance id (kWaypoint only)
  /// Ingress header-space constraints (over pkt.* symbols of the
  /// injected packet), conjoined.
  std::vector<symex::SymRef> where;
  std::string where_text;  ///< source rendering of the where clause
};

/// Parse "reach|isolate|waypoint <from> <to> [via <node>]
/// [where pkt.<field> OP <value> && ...]". Values are integers or
/// dotted quads; OP is one of == != < <= > >=. Throws on bad specs.
Query parse_query(const std::string& spec);

std::string to_string(QueryKind k);

/// One traversal step of a symbolic path.
struct TopoHop {
  std::string node;   ///< instance id
  int entry = -1;     ///< model entry index matched at this instance
  int send = 0;       ///< flow_action index followed (fan-out branches)
  int in_port = -1;   ///< ingress port at this instance (-1 = symbolic)
  int out_port = -1;  ///< emission port (-1 = symbolic, routed wildcard)
};

/// A feasible end-to-end path, delivered at the query's `to` point.
struct TopoPath {
  std::vector<TopoHop> hops;
  /// Path condition: over ingress pkt.* symbols and "<id>$"-prefixed
  /// instance state/config symbols.
  std::vector<symex::SymRef> constraints;
  /// Egress header as expressions over the ingress packet symbols.
  std::map<std::string, symex::SymRef> egress_fields;
};

struct QueryOptions {
  /// Worker threads for frontier expansion; 0 = hardware concurrency.
  /// Any value yields byte-identical results.
  int jobs = 1;
  int max_hops = 16;
  std::size_t max_paths = 64;      ///< evidence paths kept (deterministic cap)
  std::size_t max_frames = 100000; ///< frontier expansion budget
  /// Shared verdict cache (may be shared across queries and with the
  /// synthesis executor); nullptr = each worker solves uncached.
  symex::SolverCache* solver_cache = nullptr;
};

struct QueryStats {
  std::size_t frames = 0;        ///< frames expanded (deterministic)
  std::size_t infeasible = 0;    ///< entry branches pruned (deterministic)
  std::size_t cycle_pruned = 0;  ///< branches dropped for instance revisit
  std::uint64_t solver_queries = 0;  ///< deterministic
  std::uint64_t cache_hits = 0;      ///< schedule-dependent; metrics only
  std::uint64_t cache_misses = 0;    ///< schedule-dependent; metrics only
  bool truncated = false;  ///< hit max_hops / max_paths / max_frames
};

struct QueryResult {
  Query query;
  /// Evidence paths exist: delivered paths (kReach), violating delivered
  /// paths (kIsolate), delivered paths missing `via` (kWaypoint).
  bool sat = false;
  /// Query verdict: kReach -> sat; kIsolate/kWaypoint -> !sat. For the
  /// latter two, `holds && !stats.truncated` is a proof over the model
  /// semantics (the solver is sound for pruning); a kReach `holds`
  /// should be confirmed by a replayed witness (verify/witness.h).
  bool holds = false;
  std::vector<TopoPath> paths;  ///< evidence, deterministic order
  QueryStats stats;
};

/// Answer one query. Deterministic at any QueryOptions.jobs width.
/// Throws std::runtime_error when the query names unknown points.
/// Metrics: verify.topology.{queries,frames,infeasible,paths} counters,
/// verify.topology.cache.hit_rate gauge, span verify.topology.query.
QueryResult run_query(const Topology& topo, const Query& q,
                      const QueryOptions& opts = {});

}  // namespace nfactor::verify
