#include "model/model.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"

namespace nfactor::model {

namespace {

struct VarMix {
  bool pkt = false;
  bool state = false;
  bool cfg = false;
};

// The mix flags only ever accumulate, so skipping an already-visited
// shared subtree (deep store chains share almost everything) is exact —
// and keeps the walk linear in unique nodes.
void classify(const symex::SymRef& e, VarMix& mix,
              std::unordered_set<const symex::SymExpr*>& visited) {
  using symex::SymKind;
  if (!visited.insert(e.get()).second) return;
  if (e->kind == SymKind::kVar) {
    switch (e->var_class) {
      case symex::VarClass::kPkt: mix.pkt = true; break;
      case symex::VarClass::kState: mix.state = true; break;
      case symex::VarClass::kCfg: mix.cfg = true; break;
      case symex::VarClass::kLocal: break;
    }
  }
  if (e->kind == SymKind::kMapBase || e->kind == SymKind::kMapGet ||
      e->kind == SymKind::kMapStore) {
    mix.state = true;
  }
  for (const auto& c : e->operands) classify(c, mix, visited);
  for (const auto& [f, v] : e->fields) {
    (void)f;
    classify(v, mix, visited);
  }
}

bool is_identity_state(const std::string& var, const symex::SymRef& v) {
  using symex::SymKind;
  return (v->kind == SymKind::kVar && v->str_val == var) ||
         (v->kind == SymKind::kMapBase && v->str_val == var);
}

}  // namespace

std::string ModelEntry::config_key() const {
  std::set<std::string> keys;
  for (const auto& c : config_match) keys.insert(c->key());
  std::string out;
  for (const auto& k : keys) {
    out += k;
    out += '&';
  }
  return out;
}

std::vector<std::uint64_t> ModelEntry::config_identity() const {
  std::vector<std::uint64_t> fps;
  fps.reserve(config_match.size());
  for (const auto& c : config_match) fps.push_back(c->fp);
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  return fps;
}

std::map<std::string, std::vector<const ModelEntry*>> Model::tables() const {
  // Group by the fingerprint identity (word compares), then label each
  // group with the rendered config_key — computed once per group, not
  // once per entry — so the returned map sorts exactly as it always has
  // and table output bytes are unchanged.
  struct IdHash {
    std::size_t operator()(const std::vector<std::uint64_t>& id) const {
      std::uint64_t h = 0xcbf29ce484222325ULL ^ id.size();
      for (const std::uint64_t fp : id) {
        h ^= fp;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<std::uint64_t>,
                     std::vector<const ModelEntry*>, IdHash>
      groups;
  for (const auto& e : entries) groups[e.config_identity()].push_back(&e);
  std::map<std::string, std::vector<const ModelEntry*>> out;
  for (auto& [id, group] : groups) {
    (void)id;
    auto& slot = out[group.front()->config_key()];
    if (slot.empty()) {
      slot = std::move(group);
    } else {
      // A fingerprint collision split what the rendered key considers
      // one table; merge back in entry order to match legacy grouping.
      slot.insert(slot.end(), group.begin(), group.end());
      std::sort(slot.begin(), slot.end(),
                [this](const ModelEntry* a, const ModelEntry* b) {
                  return a - &entries[0] < b - &entries[0];
                });
    }
  }
  return out;
}

Model build_model(const std::string& nf_name,
                  const std::vector<symex::ExecPath>& paths,
                  const statealyzer::Result& cats) {
  OBS_SPAN_VAR(span, "model.build");
  Model m;
  m.nf_name = nf_name;
  m.cfg_vars = cats.cfg_vars;
  m.ois_vars = cats.ois_vars;

  for (const auto& p : paths) {
    ModelEntry e;
    e.truncated = p.truncated;
    e.path_nodes = p.nodes;

    // Partition the condition conjunction (Algorithm 1, lines 12-14):
    //   cfg-only           -> configuration selector,
    //   packet (no state)  -> flow match,
    //   anything touching state -> state match (this is where the
    //   canonical "tuple in nat-map" membership predicates land).
    for (const auto& c : p.constraints) {
      VarMix mix;
      std::unordered_set<const symex::SymExpr*> visited;
      classify(c, mix, visited);
      if (mix.state) {
        e.state_match.push_back(c);
      } else if (mix.pkt) {
        e.flow_match.push_back(c);
      } else if (mix.cfg) {
        e.config_match.push_back(c);
      } else {
        e.flow_match.push_back(c);  // constant residue; keep visible
      }
      std::map<std::string, symex::VarClass> vars;
      symex::collect_vars(c, vars);
      for (const auto& [name, cls] : vars) {
        if (cls == symex::VarClass::kPkt) m.pkt_fields_read.insert(name);
      }
    }

    // Flow action (line 15, packet part): field rewrites per send.
    for (const auto& s : p.sends) {
      SendAction a;
      a.port = s.port;
      for (const auto& [field, v] : s.fields) {
        if (field == "__payload") continue;
        const bool identity = v->kind == symex::SymKind::kVar &&
                              v->str_val == "pkt." + field;
        if (!identity) a.rewrites[field] = v;
      }
      e.flow_action.push_back(std::move(a));
    }

    // State action (line 15, state part): ois variables that changed.
    for (const auto& [var, v] : p.final_state) {
      if (!cats.is_ois(var)) continue;
      if (is_identity_state(var, v)) continue;
      e.state_action[var] = v;
    }

    m.entries.push_back(std::move(e));
  }
  OBS_COUNT_N("model.paths_refactored", paths.size());
  OBS_GAUGE("model.entries", m.entries.size());
  span.attr("entries", static_cast<std::int64_t>(m.entries.size()));
  return m;
}

namespace {

std::string join_conds(const std::vector<symex::SymRef>& cs) {
  if (cs.empty()) return "*";
  std::ostringstream os;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (i) os << " && ";
    os << symex::to_string(*cs[i]);
  }
  return os.str();
}

std::string action_str(const ModelEntry& e) {
  if (e.is_drop()) return "drop";
  std::ostringstream os;
  for (std::size_t i = 0; i < e.flow_action.size(); ++i) {
    if (i) os << "; ";
    const auto& a = e.flow_action[i];
    os << "send(";
    bool first = true;
    for (const auto& [f, v] : a.rewrites) {
      if (!first) os << ", ";
      first = false;
      os << f << ":=" << symex::to_string(*v);
    }
    if (first) os << "pass";
    os << ") -> port " << symex::to_string(*a.port);
  }
  return os.str();
}

std::string state_action_str(const ModelEntry& e) {
  if (e.state_action.empty()) return "*";
  std::ostringstream os;
  bool first = true;
  for (const auto& [var, v] : e.state_action) {
    if (!first) os << "; ";
    first = false;
    os << var << " := " << symex::to_string(*v);
  }
  return os.str();
}

}  // namespace

std::string to_table(const Model& m) {
  std::ostringstream os;
  os << "NFactor model: " << m.nf_name << "\n";
  os << "=================================================================\n";
  for (const auto& [cfg, entries] : m.tables()) {
    os << "-- config: "
       << (entries.front()->config_match.empty()
               ? std::string("(any)")
               : join_conds(entries.front()->config_match))
       << " --\n";
    os << "  | Match(flow) | Match(state) | Action(flow) | Action(state) |\n";
    for (const ModelEntry* e : entries) {
      os << "  | " << join_conds(e->flow_match) << " | "
         << join_conds(e->state_match) << " | " << action_str(*e) << " | "
         << state_action_str(*e) << " |";
      if (e->truncated) os << "  (truncated)";
      os << "\n";
    }
  }
  os << "  | (default) | * | drop | * |\n";
  return os.str();
}

std::string to_text(const Model& m) {
  std::ostringstream os;
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    const auto& e = m.entries[i];
    os << "entry " << i << ":\n";
    os << "  config: " << join_conds(e.config_match) << "\n";
    os << "  flow:   " << join_conds(e.flow_match) << "\n";
    os << "  state:  " << join_conds(e.state_match) << "\n";
    os << "  action: " << action_str(e) << "\n";
    os << "  update: " << state_action_str(e) << "\n";
  }
  os << "default: drop\n";
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void json_cond_array(std::ostringstream& os,
                     const std::vector<symex::SymRef>& cs) {
  os << '[';
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (i) os << ',';
    json_escape(os, symex::to_string(*cs[i]));
  }
  os << ']';
}

}  // namespace

std::string to_json(const Model& m) {
  std::ostringstream os;
  os << "{\n  \"nf\": ";
  json_escape(os, m.nf_name);
  os << ",\n  \"default_action\": \"drop\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    const auto& e = m.entries[i];
    os << "    {\"config\": ";
    json_cond_array(os, e.config_match);
    os << ", \"flow_match\": ";
    json_cond_array(os, e.flow_match);
    os << ", \"state_match\": ";
    json_cond_array(os, e.state_match);
    os << ", \"actions\": [";
    for (std::size_t a = 0; a < e.flow_action.size(); ++a) {
      if (a) os << ',';
      os << "{\"rewrites\": {";
      bool first = true;
      for (const auto& [f, v] : e.flow_action[a].rewrites) {
        if (!first) os << ',';
        first = false;
        json_escape(os, f);
        os << ": ";
        json_escape(os, symex::to_string(*v));
      }
      os << "}, \"port\": ";
      json_escape(os, symex::to_string(*e.flow_action[a].port));
      os << '}';
    }
    os << "], \"state_update\": {";
    bool first = true;
    for (const auto& [var, v] : e.state_action) {
      if (!first) os << ',';
      first = false;
      json_escape(os, var);
      os << ": ";
      json_escape(os, symex::to_string(*v));
    }
    os << "}, \"truncated\": " << (e.truncated ? "true" : "false") << '}';
    os << (i + 1 < m.entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace nfactor::model
