// Model consistency validation and model diffing — the operations a
// vendor workflow needs once models are artifacts that get shipped,
// hand-tuned, and revised across NF versions (§1: vendors run NFactor
// and hand operators "only the resultant models").
//
// validate(): solver-backed checks that
//   - every entry's own match conjunction is satisfiable (an unsat entry
//     is dead — it can never fire);
//   - entries within one configuration table are pairwise disjoint
//     (overlapping entries make the model order-dependent; SE-derived
//     entries are disjoint by construction, so any overlap indicates a
//     hand edit or a truncated path).
//
// diff(): structural comparison of two models by canonical entry
// signature — which forwarding behaviours were added / removed between
// two versions of an NF.
#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace nfactor::model {

struct ValidationIssue {
  enum class Kind : std::uint8_t {
    kUnsatisfiableEntry,  // entry can never match
    kOverlap,             // two entries can match the same packet+state
  };
  Kind kind;
  int entry_a = -1;
  int entry_b = -1;  // kOverlap only
  std::string detail;
};

std::string to_string(ValidationIssue::Kind k);

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  std::size_t pairs_checked = 0;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

/// Solver-backed consistency check. Truncated entries are exempt from
/// the disjointness requirement (their conditions are prefixes).
ValidationReport validate(const Model& m);

/// Canonical signature of an entry: sorted condition keys + action keys.
std::string entry_signature(const ModelEntry& e);

struct ModelDiff {
  std::vector<std::string> added;    // signatures only in `after`
  std::vector<std::string> removed;  // signatures only in `before`
  std::size_t unchanged = 0;
  bool identical() const { return added.empty() && removed.empty(); }
  std::string summary() const;
};

ModelDiff diff_models(const Model& before, const Model& after);

}  // namespace nfactor::model
