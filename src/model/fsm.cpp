#include "model/fsm.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace nfactor::model {

namespace {

using symex::SymKind;
using symex::SymRef;

/// Does this expression mention the given state variable (as a scalar
/// symbol or as a map base)?
bool mentions(const SymRef& e, const std::string& var) {
  if ((e->kind == SymKind::kVar || e->kind == SymKind::kMapBase) &&
      e->str_val == var) {
    return true;
  }
  for (const auto& c : e->operands) {
    if (mentions(c, var)) return true;
  }
  for (const auto& [f, v] : e->fields) {
    (void)f;
    if (mentions(v, var)) return true;
  }
  return false;
}

/// Is this (possibly store-chained) map expression rooted at `var`?
bool rooted_at(const SymRef& e, const std::string& var) {
  const SymRef* m = &e;
  while ((*m)->kind == SymKind::kMapStore) m = &(*m)->operands[0];
  return (*m)->kind == SymKind::kMapBase && (*m)->str_val == var;
}

struct StateFacts {
  int contained = -1;  // -1 unknown, 0 absent, 1 present
  std::set<std::string> value_facts;  // "== 1", "!= 3", ...
};

void absorb(const SymRef& cond, const std::string& var, StateFacts& f) {
  SymRef e = cond;
  bool polarity = true;
  while (e->kind == SymKind::kUn && e->un_op == lang::UnOp::kNot) {
    e = e->operands[0];
    polarity = !polarity;
  }
  if (e->kind == SymKind::kContains && rooted_at(e->operands[0], var)) {
    f.contained = polarity ? 1 : 0;
    return;
  }
  // Recurse into conjunctions (and negated disjunctions, their dual).
  if (e->kind == SymKind::kBin &&
      ((polarity && e->bin_op == lang::BinOp::kAnd) ||
       (!polarity && e->bin_op == lang::BinOp::kOr))) {
    SymRef a = polarity ? e->operands[0] : symex::negate(e->operands[0]);
    SymRef b = polarity ? e->operands[1] : symex::negate(e->operands[1]);
    absorb(a, var, f);
    absorb(b, var, f);
    return;
  }
  if (e->kind == SymKind::kBin) {
    using lang::BinOp;
    const BinOp op = polarity ? e->bin_op
                     : e->bin_op == BinOp::kEq ? BinOp::kNe
                     : e->bin_op == BinOp::kNe ? BinOp::kEq
                                               : e->bin_op;
    const SymRef& a = e->operands[0];
    const SymRef& b = e->operands[1];
    auto is_get = [&](const SymRef& x) {
      return (x->kind == SymKind::kMapGet && rooted_at(x->operands[0], var)) ||
             (x->kind == SymKind::kVar && x->str_val == var);
    };
    const SymRef* value = nullptr;
    if (is_get(a) && b->kind == SymKind::kConstInt) value = &b;
    if (is_get(b) && a->kind == SymKind::kConstInt) value = &a;
    if (value != nullptr && (op == BinOp::kEq || op == BinOp::kNe)) {
      f.value_facts.insert(std::string(op == BinOp::kEq ? "== " : "!= ") +
                           std::to_string((*value)->int_val));
      if (op == BinOp::kEq) f.contained = 1;
    }
  }
}

std::string label_of(const StateFacts& f) {
  if (!f.value_facts.empty()) {
    std::string out;
    for (const auto& v : f.value_facts) {
      if (!out.empty()) out += " & ";
      out += v;
    }
    return out;
  }
  if (f.contained == 1) return "present";
  if (f.contained == 0) return "absent";
  return "*";
}

/// Post-state label from a state-action expression.
std::string to_label(const SymRef& update, const std::string& from) {
  if (update->kind == SymKind::kConstInt) {
    return "== " + std::to_string(update->int_val);
  }
  if (update->kind == SymKind::kMapStore) {
    const SymRef& stored = update->operands[2];
    if (stored->kind == SymKind::kConstInt) {
      return "== " + std::to_string(stored->int_val);
    }
    return "present";
  }
  (void)from;
  return "f(prev)";
}

std::string guard_of(const ModelEntry& e) {
  std::ostringstream os;
  bool first = true;
  for (const auto& c : e.flow_match) {
    if (!first) os << " && ";
    first = false;
    os << symex::to_string(*c);
  }
  std::string g = os.str();
  if (g.size() > 120) g = g.substr(0, 117) + "...";
  return g.empty() ? "*" : g;
}

std::string dot_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int Fsm::state_index(const std::string& label) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i] == label) return static_cast<int>(i);
  }
  return -1;
}

Fsm extract_fsm(const Model& m, const std::string& state_var,
                bool include_unrelated) {
  Fsm fsm;
  fsm.state_var = state_var;

  auto intern = [&fsm](const std::string& label) {
    const int existing = fsm.state_index(label);
    if (existing >= 0) return existing;
    fsm.states.push_back(label);
    return static_cast<int>(fsm.states.size() - 1);
  };

  for (std::size_t ei = 0; ei < m.entries.size(); ++ei) {
    const ModelEntry& e = m.entries[ei];

    StateFacts facts;
    for (const auto& c : e.state_match) {
      if (mentions(c, state_var)) absorb(c, state_var, facts);
    }
    const auto upd = e.state_action.find(state_var);
    const bool touches = upd != e.state_action.end() ||
                         facts.contained != -1 || !facts.value_facts.empty();
    if (!touches && !include_unrelated) continue;

    const std::string from = label_of(facts);
    const std::string to =
        upd != e.state_action.end() ? to_label(upd->second, from) : from;

    FsmTransition t;
    t.from = intern(from);
    t.to = intern(to);
    t.guard = guard_of(e);
    t.entry = static_cast<int>(ei);
    t.forwards = !e.is_drop();
    fsm.transitions.push_back(std::move(t));
  }
  return fsm;
}

std::string Fsm::to_dot() const {
  std::ostringstream os;
  os << "digraph fsm_" << state_var << " {\n";
  os << "  rankdir=LR;\n  label=\"state: " << dot_escape(state_var)
     << "\";\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << "  s" << i << " [label=\"" << dot_escape(states[i])
       << "\", shape=ellipse];\n";
  }
  for (const auto& t : transitions) {
    os << "  s" << t.from << " -> s" << t.to << " [label=\"e" << t.entry
       << ": " << dot_escape(t.guard) << "\""
       << (t.forwards ? "" : ", style=dashed") << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string Fsm::to_text() const {
  std::ostringstream os;
  os << "FSM over '" << state_var << "': " << states.size() << " states, "
     << transitions.size() << " transitions\n";
  for (const auto& t : transitions) {
    os << "  [" << states[static_cast<std::size_t>(t.from)] << "] --(entry "
       << t.entry << (t.forwards ? ", fwd" : ", drop") << ")--> ["
       << states[static_cast<std::size_t>(t.to)] << "]\n";
  }
  return os.str();
}

}  // namespace nfactor::model
