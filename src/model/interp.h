// Model interpreter: executes a synthesized NFactor model on concrete
// packets, maintaining concrete state for the oisVars. Together with the
// concrete runtime this forms the two sides of the §5 accuracy
// experiment: original program vs model, same packets, same outputs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "model/model.h"
#include "netsim/packet.h"
#include "runtime/value.h"

namespace nfactor::model {

struct ModelOutput {
  std::vector<std::pair<netsim::Packet, int>> sent;
  int matched_entry = -1;  // -1 = default drop
  bool dropped() const { return sent.empty(); }
};

/// Concrete initial values for config + state variables, evaluated from
/// the module's global initializers (and its init section).
std::map<std::string, runtime::Value> initial_store(const ir::Module& m);

class ModelInterpreter {
 public:
  ModelInterpreter(const Model& model,
                   std::map<std::string, runtime::Value> store);

  ModelOutput process(const netsim::Packet& in);

  const runtime::Value* state(const std::string& name) const;
  void set_state(const std::string& name, runtime::Value v);

 private:
  bool entry_matches(const ModelEntry& e, const netsim::Packet& in) const;

  const Model& model_;
  std::map<std::string, runtime::Value> store_;
};

}  // namespace nfactor::model
