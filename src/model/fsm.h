// Finite-state-machine extraction from a synthesized model (paper §2.4:
// "The state transition logic can be used to build a finite state
// machine, which is proposed and used in network testing solutions
// [BUZZ]").
//
// For one state variable (a scalar or a per-flow map), the abstract
// states are the valuations the model's entries distinguish — "absent",
// "== c", "*" — and each entry contributes a transition
//    (state it matches) --[flow guard]--> (state its update produces).
#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace nfactor::model {

struct FsmTransition {
  int from = -1;              // index into Fsm::states
  int to = -1;
  std::string guard;          // human-readable flow-match summary
  int entry = -1;             // provenance: model entry index
  bool forwards = false;      // entry sends (vs drop)
};

struct Fsm {
  std::string state_var;
  std::vector<std::string> states;  // "absent", "== 1", "*", ...
  std::vector<FsmTransition> transitions;

  int state_index(const std::string& label) const;

  /// Graphviz rendering (forwarding transitions solid, drops dashed).
  std::string to_dot() const;
  std::string to_text() const;
};

/// Extract the FSM of `state_var` from the model. Entries that do not
/// constrain or update the variable contribute "*" self-loops only when
/// `include_unrelated` is set.
Fsm extract_fsm(const Model& m, const std::string& state_var,
                bool include_unrelated = false);

}  // namespace nfactor::model
