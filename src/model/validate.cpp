#include "model/validate.h"

#include <set>
#include <sstream>

#include "symex/solver.h"

namespace nfactor::model {

namespace {

std::vector<symex::SymRef> all_conditions(const ModelEntry& e) {
  std::vector<symex::SymRef> out;
  out.insert(out.end(), e.config_match.begin(), e.config_match.end());
  out.insert(out.end(), e.flow_match.begin(), e.flow_match.end());
  out.insert(out.end(), e.state_match.begin(), e.state_match.end());
  return out;
}

}  // namespace

std::string to_string(ValidationIssue::Kind k) {
  switch (k) {
    case ValidationIssue::Kind::kUnsatisfiableEntry: return "unsat-entry";
    case ValidationIssue::Kind::kOverlap: return "overlap";
  }
  return "?";
}

ValidationReport validate(const Model& m) {
  ValidationReport report;
  symex::Solver solver;

  // Dead entries.
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    if (solver.check(all_conditions(m.entries[i])) ==
        symex::SatResult::kUnsat) {
      report.issues.push_back(
          {ValidationIssue::Kind::kUnsatisfiableEntry, static_cast<int>(i),
           -1, "entry " + std::to_string(i) + " can never match"});
    }
  }

  // Pairwise disjointness within each configuration table.
  const auto tables = m.tables();
  for (const auto& [cfg, entries] : tables) {
    (void)cfg;
    for (std::size_t a = 0; a < entries.size(); ++a) {
      for (std::size_t b = a + 1; b < entries.size(); ++b) {
        if (entries[a]->truncated || entries[b]->truncated) continue;
        ++report.pairs_checked;
        std::vector<symex::SymRef> both = all_conditions(*entries[a]);
        const auto more = all_conditions(*entries[b]);
        both.insert(both.end(), more.begin(), more.end());
        if (solver.check(both) == symex::SatResult::kSat) {
          // The solver is incomplete toward SAT; report as potential
          // overlap only when the entries' flow+state conditions are not
          // simply complementary prefixes. We still surface it — callers
          // treat overlaps as warnings.
          const int ia = static_cast<int>(entries[a] - &m.entries[0]);
          const int ib = static_cast<int>(entries[b] - &m.entries[0]);
          report.issues.push_back(
              {ValidationIssue::Kind::kOverlap, ia, ib,
               "entries " + std::to_string(ia) + " and " + std::to_string(ib) +
                   " may match the same packet/state"});
        }
      }
    }
  }
  return report;
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  os << issues.size() << " issue(s), " << pairs_checked
     << " disjointness pairs checked";
  for (const auto& i : issues) {
    os << "\n  [" << to_string(i.kind) << "] " << i.detail;
  }
  return os.str();
}

std::string entry_signature(const ModelEntry& e) {
  std::set<std::string> conds;
  for (const auto& c : e.config_match) conds.insert(c->key());
  for (const auto& c : e.flow_match) conds.insert(c->key());
  for (const auto& c : e.state_match) conds.insert(c->key());
  std::ostringstream os;
  os << "M[";
  for (const auto& c : conds) os << c << '&';
  os << "] A[";
  for (const auto& a : e.flow_action) {
    os << "(";
    for (const auto& [f, v] : a.rewrites) os << f << '=' << v->key() << ';';
    os << ")@" << a.port->key();
  }
  os << "] S[";
  for (const auto& [var, v] : e.state_action) {
    os << var << '=' << v->key() << ';';
  }
  os << ']';
  return os.str();
}

ModelDiff diff_models(const Model& before, const Model& after) {
  std::set<std::string> sb;
  std::set<std::string> sa;
  for (const auto& e : before.entries) sb.insert(entry_signature(e));
  for (const auto& e : after.entries) sa.insert(entry_signature(e));

  ModelDiff d;
  for (const auto& s : sa) {
    if (sb.count(s)) {
      ++d.unchanged;
    } else {
      d.added.push_back(s);
    }
  }
  for (const auto& s : sb) {
    if (!sa.count(s)) d.removed.push_back(s);
  }
  return d;
}

std::string ModelDiff::summary() const {
  std::ostringstream os;
  os << added.size() << " added, " << removed.size() << " removed, "
     << unchanged << " unchanged";
  return os.str();
}

}  // namespace nfactor::model
