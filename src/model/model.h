// The NFactor model (paper §2.3, Fig. 2a): an OpenFlow-like stateful
// match/action abstraction. Each entry corresponds to one feasible
// execution path of the packet/state slice; its match is the path's
// condition conjunction partitioned into config / flow / state parts
// (Algorithm 1, lines 11-16), and its action is the path's packet
// transformation + state transition. The default (lowest priority)
// action is drop (§3.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "netsim/packet.h"
#include "runtime/value.h"
#include "statealyzer/statealyzer.h"
#include "symex/executor.h"
#include "symex/expr.h"

namespace nfactor::model {

/// Forward action: emit one packet with field rewrites applied.
struct SendAction {
  /// Field -> new value (expressions over input packet fields, state and
  /// config symbols). Fields absent here pass through unchanged.
  std::map<std::string, symex::SymRef> rewrites;
  symex::SymRef port;
};

struct ModelEntry {
  std::vector<symex::SymRef> config_match;  // over cfgVars only
  std::vector<symex::SymRef> flow_match;    // over packet fields (and cfg)
  std::vector<symex::SymRef> state_match;   // touching oisVars / state maps
  std::vector<SendAction> flow_action;      // empty = drop
  std::map<std::string, symex::SymRef> state_action;  // oisVar -> new value
  bool truncated = false;
  std::set<int> path_nodes;  // provenance: slice nodes of the source path

  bool is_drop() const { return flow_action.empty(); }

  /// Rendered label of the configuration table this entry belongs to
  /// (sorted canonical keys of config_match; empty = "any config").
  /// Rendering-only: grouping itself uses config_identity().
  std::string config_key() const;

  /// Structural identity of the config set: sorted, deduplicated
  /// fingerprints of config_match. This is what tables() groups by —
  /// word compares instead of string renders.
  std::vector<std::uint64_t> config_identity() const;
};

struct Model {
  std::string nf_name;
  std::vector<ModelEntry> entries;
  std::set<std::string> cfg_vars;
  std::set<std::string> ois_vars;
  std::set<std::string> pkt_fields_read;

  /// Entries grouped per configuration table (Fig. 2a's c1, c2, ...).
  std::map<std::string, std::vector<const ModelEntry*>> tables() const;
};

/// Algorithm 1, lines 11-16: refactor execution paths into model entries.
Model build_model(const std::string& nf_name,
                  const std::vector<symex::ExecPath>& paths,
                  const statealyzer::Result& cats);

/// Render the model in the paper's Figure-6 tabular style.
std::string to_table(const Model& m);

/// Structured one-entry-per-line rendering (stable; used in golden tests).
std::string to_text(const Model& m);

/// JSON serialization (the artifact an NF vendor would ship, §1).
std::string to_json(const Model& m);

}  // namespace nfactor::model
