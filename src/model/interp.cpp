#include "model/interp.h"

#include <stdexcept>

#include "runtime/interp.h"
#include "symex/concrete_eval.h"

namespace nfactor::model {

std::map<std::string, runtime::Value> initial_store(const ir::Module& m) {
  // The concrete runtime already knows how to evaluate global
  // initializers and the init section; borrow its work.
  runtime::Interpreter interp(m);
  std::map<std::string, runtime::Value> out;
  for (const auto& v : m.persistent) {
    if (const runtime::Value* val = interp.global(v)) out[v] = *val;
  }
  return out;
}

ModelInterpreter::ModelInterpreter(const Model& model,
                                   std::map<std::string, runtime::Value> store)
    : model_(model), store_(std::move(store)) {}

const runtime::Value* ModelInterpreter::state(const std::string& name) const {
  const auto it = store_.find(name);
  return it == store_.end() ? nullptr : &it->second;
}

void ModelInterpreter::set_state(const std::string& name, runtime::Value v) {
  store_[name] = std::move(v);
}

namespace {

symex::ConcreteEnv make_env(const std::map<std::string, runtime::Value>& store,
                            const netsim::Packet& in) {
  symex::ConcreteEnv env;
  env.input_packet = &in;
  env.var = [&store, &in](const std::string& name) -> runtime::Value {
    if (name.starts_with("pkt.")) {
      const std::string field = name.substr(4);
      if (field == "__payload") {
        // Identity handle; payload predicates use input_packet directly.
        return runtime::Value(static_cast<runtime::Int>(0));
      }
      return runtime::Value(runtime::get_packet_field(in, field));
    }
    const auto it = store.find(name);
    if (it == store.end()) throw std::out_of_range("unknown symbol " + name);
    return it->second;
  };
  env.map_base = [&store](const std::string& name) -> const runtime::MapV* {
    const auto it = store.find(name);
    if (it == store.end() || !it->second.is_map()) return nullptr;
    return &it->second.as_map();
  };
  return env;
}

}  // namespace

bool ModelInterpreter::entry_matches(const ModelEntry& e,
                                     const netsim::Packet& in) const {
  const symex::ConcreteEnv env = make_env(store_, in);
  try {
    for (const auto& c : e.config_match) {
      if (!symex::eval_concrete_bool(c, env)) return false;
    }
    for (const auto& c : e.flow_match) {
      if (!symex::eval_concrete_bool(c, env)) return false;
    }
    for (const auto& c : e.state_match) {
      if (!symex::eval_concrete_bool(c, env)) return false;
    }
  } catch (const std::exception&) {
    // A matching entry's conditions never throw (they were simultaneously
    // true on the source path); an exception means some other entry's
    // precondition is absent — not a match.
    return false;
  }
  return true;
}

ModelOutput ModelInterpreter::process(const netsim::Packet& in) {
  ModelOutput out;
  const symex::ConcreteEnv env = make_env(store_, in);

  for (std::size_t i = 0; i < model_.entries.size(); ++i) {
    const ModelEntry& e = model_.entries[i];
    if (!entry_matches(e, in)) continue;
    out.matched_entry = static_cast<int>(i);

    // Flow action.
    for (const auto& a : e.flow_action) {
      netsim::Packet p = in;
      for (const auto& [field, expr] : a.rewrites) {
        const runtime::Value v = symex::eval_concrete(expr, env);
        runtime::set_packet_field(p, field, v.as_int());
      }
      const runtime::Value port = symex::eval_concrete(a.port, env);
      out.sent.emplace_back(std::move(p), static_cast<int>(port.as_int()));
    }

    // State transition: evaluate all RHS against the pre-state, then
    // commit atomically.
    std::map<std::string, runtime::Value> updates;
    for (const auto& [var, expr] : e.state_action) {
      updates[var] = symex::eval_concrete(expr, env);
    }
    for (auto& [var, v] : updates) store_[var] = std::move(v);
    return out;  // entries are mutually exclusive; first match wins
  }
  return out;  // default: drop
}

}  // namespace nfactor::model
