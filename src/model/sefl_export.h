// SymNet/SEFL-style export (paper §6: "our code analysis can
// automatically generate the model defined in their language. This will
// be a part of our future work."). Each model entry becomes a SEFL
// branch: Constrain() guards over packet fields and state, Assign()
// rewrites, Forward(port) / Fail() actions — the vocabulary SymNet's
// symbolic-execution verifier consumes.
#pragma once

#include <string>

#include "model/model.h"

namespace nfactor::model {

/// Render the model as a SEFL-like program.
std::string to_sefl(const Model& m);

}  // namespace nfactor::model
