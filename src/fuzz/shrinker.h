// Delta-debugging reproducer minimizer (docs/fuzzing.md). Given a
// failing program and a predicate that re-judges candidates, repeatedly
// removes whole statements and conditional blocks (and unwraps
// conditionals into their arms) while the predicate keeps failing,
// converging on a minimal `.nf` reproducer. Candidates that no longer
// parse/analyze are discarded before the predicate ever sees them, so
// the output always parses; only size-reducing edits are attempted, so
// the output is never larger than the input.
#pragma once

#include <functional>
#include <string>

#include "fuzz/oracle.h"

namespace nfactor::fuzz {

/// Returns true when `source` still exhibits the failure being shrunk.
/// This is the fault-injection hook: tests substitute arbitrary
/// predicates for the real oracle.
using FailPredicate = std::function<bool(const std::string& source)>;

struct ShrinkResult {
  std::string source;        ///< minimized program (== input when stuck)
  int rounds = 0;            ///< fixed-point passes run
  int candidates_tried = 0;  ///< candidate programs judged
  int candidates_kept = 0;   ///< size-reducing edits accepted
};

class Shrinker {
 public:
  explicit Shrinker(FailPredicate still_fails);

  /// A shrinker whose predicate is "the oracle still reports exactly
  /// failure class `cls`" — same-bug preservation, so minimization never
  /// wanders onto a different defect.
  static Shrinker for_oracle(const DifferentialOracle& oracle,
                             FailureClass cls);

  ShrinkResult shrink(const std::string& source) const;

 private:
  FailPredicate still_fails_;
};

}  // namespace nfactor::fuzz
