#include "fuzz/mutate.h"

#include <cctype>
#include <functional>
#include <set>
#include <stdexcept>

#include "lang/ast.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace nfactor::fuzz {

namespace {

// Byte offsets of each line start, so a 1-based SourceLoc maps to a
// position in the source string.
std::vector<std::size_t> line_starts(const std::string& src) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t loc_offset(const std::vector<std::size_t>& starts, int line,
                       int col) {
  if (line < 1 || static_cast<std::size_t>(line) > starts.size()) return 0;
  return starts[static_cast<std::size_t>(line) - 1] +
         static_cast<std::size_t>(col > 0 ? col - 1 : 0);
}

bool is_hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Pre-order walk over every statement of every function body.
void walk_stmts(const lang::Stmt& s,
                const std::function<void(const lang::Stmt&)>& fn) {
  fn(s);
  switch (s.kind) {
    case lang::StmtKind::kBlock:
      for (const auto& c : static_cast<const lang::Block&>(s).stmts) {
        walk_stmts(*c, fn);
      }
      break;
    case lang::StmtKind::kIf: {
      const auto& i = static_cast<const lang::If&>(s);
      walk_stmts(*i.then_body, fn);
      if (i.else_body) walk_stmts(*i.else_body, fn);
      break;
    }
    case lang::StmtKind::kWhile:
      walk_stmts(*static_cast<const lang::While&>(s).body, fn);
      break;
    case lang::StmtKind::kFor:
      walk_stmts(*static_cast<const lang::For&>(s).body, fn);
      break;
    default:
      break;
  }
}

void walk_exprs(const lang::Expr& e,
                const std::function<void(const lang::Expr&)>& fn) {
  fn(e);
  switch (e.kind) {
    case lang::ExprKind::kUnary:
      walk_exprs(*static_cast<const lang::Unary&>(e).operand, fn);
      break;
    case lang::ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      walk_exprs(*b.lhs, fn);
      walk_exprs(*b.rhs, fn);
      break;
    }
    case lang::ExprKind::kCall:
      for (const auto& a : static_cast<const lang::Call&>(e).args) {
        walk_exprs(*a, fn);
      }
      break;
    case lang::ExprKind::kTupleLit:
      for (const auto& x : static_cast<const lang::TupleLit&>(e).elems) {
        walk_exprs(*x, fn);
      }
      break;
    case lang::ExprKind::kListLit:
      for (const auto& x : static_cast<const lang::ListLit&>(e).elems) {
        walk_exprs(*x, fn);
      }
      break;
    case lang::ExprKind::kIndex: {
      const auto& ix = static_cast<const lang::Index&>(e);
      walk_exprs(*ix.base, fn);
      walk_exprs(*ix.index, fn);
      break;
    }
    case lang::ExprKind::kField:
      walk_exprs(*static_cast<const lang::FieldRef&>(e).base, fn);
      break;
    default:
      break;
  }
}

// Every sub-expression of a statement (not descending into nested
// statements — the statement walk handles those separately).
void stmt_exprs(const lang::Stmt& s,
                const std::function<void(const lang::Expr&)>& fn) {
  switch (s.kind) {
    case lang::StmtKind::kAssign: {
      const auto& a = static_cast<const lang::Assign&>(s);
      if (a.index) walk_exprs(*a.index, fn);
      walk_exprs(*a.value, fn);
      break;
    }
    case lang::StmtKind::kIf:
      walk_exprs(*static_cast<const lang::If&>(s).cond, fn);
      break;
    case lang::StmtKind::kWhile:
      walk_exprs(*static_cast<const lang::While&>(s).cond, fn);
      break;
    case lang::StmtKind::kFor: {
      const auto& f = static_cast<const lang::For&>(s);
      walk_exprs(*f.begin, fn);
      walk_exprs(*f.end, fn);
      break;
    }
    case lang::StmtKind::kReturn: {
      const auto& r = static_cast<const lang::Return&>(s);
      if (r.value) walk_exprs(*r.value, fn);
      break;
    }
    case lang::StmtKind::kExprStmt:
      walk_exprs(*static_cast<const lang::ExprStmt&>(s).expr, fn);
      break;
    default:
      break;
  }
}

// Length of the integer-literal token at `off`, or 0 if the text there
// is not a plain literal we can safely rewrite. Dotted-quad IP literals
// (`3.3.3.3` — one kInt token) are rejected: rewriting one textually
// as a decimal would change its meaning as an address and read badly.
std::size_t literal_extent(const std::string& src, std::size_t off) {
  if (off >= src.size() || !is_digit(src[off])) return 0;
  if (off > 0 && src[off - 1] == '.') return 0;  // inside a dotted quad
  std::size_t end = off;
  if (src[off] == '0' && end + 1 < src.size() &&
      (src[end + 1] == 'x' || src[end + 1] == 'X')) {
    end += 2;
    while (end < src.size() && is_hex_digit(src[end])) ++end;
  } else {
    while (end < src.size() && is_digit(src[end])) ++end;
  }
  if (end < src.size() && src[end] == '.' && end + 1 < src.size() &&
      is_digit(src[end + 1])) {
    return 0;  // head of a dotted quad
  }
  return end - off;
}

// Span of the parenthesized if-condition starting at the `if` keyword:
// from the opening '(' through its matching ')'. Returns length 0 when
// the text doesn't match (defensive — the grammar requires parens).
std::size_t guard_extent(const std::string& src, std::size_t if_off,
                         std::size_t* open_out) {
  std::size_t p = if_off;
  while (p < src.size() && src[p] != '(' && src[p] != '\n') ++p;
  if (p >= src.size() || src[p] != '(') return 0;
  *open_out = p;
  int depth = 0;
  bool in_str = false;
  for (std::size_t q = p; q < src.size(); ++q) {
    const char c = src[q];
    if (in_str) {
      if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (--depth == 0) return q - p + 1;
    }
  }
  return 0;
}

// Span of a simple statement from its first token through the
// terminating ';' (inclusive), tracking nesting so tuple/list/index
// punctuation inside the statement is skipped.
std::size_t stmt_extent(const std::string& src, std::size_t off) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t q = off; q < src.size(); ++q) {
    const char c = src[q];
    if (in_str) {
      if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '(': case '[': case '{': ++depth; break;
      case ')': case ']': case '}': --depth; break;
      case ';':
        if (depth == 0) return q - off + 1;
        break;
      default: break;
    }
  }
  return 0;
}

}  // namespace

std::string to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kWrongConstant: return "wrong-constant";
    case FaultClass::kInvertedGuard: return "inverted-guard";
    case FaultClass::kMissingStateUpdate: return "missing-state-update";
  }
  return "?";
}

std::vector<MutationSite> mutation_sites(const std::string& source,
                                         FaultClass cls) {
  lang::Program prog;
  try {
    prog = lang::parse(source, "<mutate>");
  } catch (const std::exception&) {
    return {};
  }
  const auto starts = line_starts(source);
  std::set<std::string> globals;
  for (const auto& g : prog.globals) globals.insert(g.name);

  std::vector<MutationSite> sites;
  std::set<std::size_t> seen;  // dedup desugared nodes sharing one token
  const auto add = [&](MutationSite s) {
    if (seen.insert(s.offset).second) sites.push_back(std::move(s));
  };

  for (const auto& f : prog.funcs) {
    walk_stmts(*f.body, [&](const lang::Stmt& s) {
      switch (cls) {
        case FaultClass::kWrongConstant:
          stmt_exprs(s, [&](const lang::Expr& e) {
            if (e.kind != lang::ExprKind::kIntLit || e.loc.line <= 0) return;
            const auto& lit = static_cast<const lang::IntLit&>(e);
            const std::size_t off = loc_offset(starts, e.loc.line, e.loc.col);
            const std::size_t len = literal_extent(source, off);
            if (len == 0) return;
            MutationSite site;
            site.line = e.loc.line;
            site.col = e.loc.col;
            site.offset = off;
            site.length = len;
            site.value = lit.value;
            site.description = "int literal " + std::to_string(lit.value) +
                               " at line " + std::to_string(e.loc.line);
            add(std::move(site));
          });
          break;
        case FaultClass::kInvertedGuard: {
          if (s.kind != lang::StmtKind::kIf || s.loc.line <= 0) break;
          const std::size_t off = loc_offset(starts, s.loc.line, s.loc.col);
          std::size_t open = 0;
          const std::size_t len = guard_extent(source, off, &open);
          if (len == 0) break;
          MutationSite site;
          site.line = s.loc.line;
          site.col = s.loc.col;
          site.offset = open;
          site.length = len;
          site.description =
              "if-guard at line " + std::to_string(s.loc.line);
          add(std::move(site));
          break;
        }
        case FaultClass::kMissingStateUpdate: {
          if (s.kind != lang::StmtKind::kAssign || s.loc.line <= 0) break;
          const auto& a = static_cast<const lang::Assign&>(s);
          if (a.target == lang::Assign::Target::kField) break;  // pkt header
          if (globals.count(a.var) == 0) break;
          const std::size_t off = loc_offset(starts, s.loc.line, s.loc.col);
          const std::size_t len = stmt_extent(source, off);
          if (len == 0) break;
          MutationSite site;
          site.line = s.loc.line;
          site.col = s.loc.col;
          site.offset = off;
          site.length = len;
          site.description =
              "state update to '" + a.var + "' at line " +
              std::to_string(s.loc.line);
          add(std::move(site));
          break;
        }
      }
    });
  }
  return sites;
}

std::string replace_constant(const std::string& source,
                             const MutationSite& site,
                             std::int64_t new_value) {
  std::string out = source.substr(0, site.offset);
  out += std::to_string(new_value);
  out += source.substr(site.offset + site.length);
  return out;
}

std::string invert_guard(const std::string& source, const MutationSite& site) {
  // "( inner )" -> "(!( inner ))": pure insertion, line count unchanged.
  const std::size_t open = site.offset;
  const std::size_t close = site.offset + site.length - 1;
  std::string out = source.substr(0, open + 1);
  out += "!(";
  out += source.substr(open + 1, close - open - 1);
  out += ")";
  out += source.substr(close);
  return out;
}

std::string blank_statement(const std::string& source,
                            const MutationSite& site) {
  std::string out = source;
  for (std::size_t i = site.offset; i < site.offset + site.length; ++i) {
    if (out[i] != '\n') out[i] = ' ';
  }
  return out;
}

MutationResult mutate(const std::string& source, FaultClass cls,
                      std::uint64_t seed) {
  MutationResult res;
  res.cls = cls;
  const auto sites = mutation_sites(source, cls);
  res.site_count = sites.size();
  if (sites.empty()) {
    res.description = "no viable sites for " + to_string(cls);
    return res;
  }
  const std::size_t n = sites.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (seed % n + k) % n;
    const MutationSite& site = sites[idx];
    std::string mutated;
    std::string what;
    switch (cls) {
      case FaultClass::kWrongConstant: {
        const std::int64_t delta = 1 + static_cast<std::int64_t>((seed >> 8) % 7);
        mutated = replace_constant(source, site, site.value + delta);
        what = to_string(cls) + ": " + std::to_string(site.value) + " -> " +
               std::to_string(site.value + delta) + " at line " +
               std::to_string(site.line);
        break;
      }
      case FaultClass::kInvertedGuard:
        mutated = invert_guard(source, site);
        what = to_string(cls) + ": " + site.description;
        break;
      case FaultClass::kMissingStateUpdate:
        mutated = blank_statement(source, site);
        what = to_string(cls) + ": blanked " + site.description;
        break;
    }
    if (mutated == source) continue;
    try {
      lang::Program prog = lang::parse(mutated, "<mutant>");
      lang::analyze(prog);  // reject mutants sema would refuse
    } catch (const std::exception&) {
      continue;
    }
    res.ok = true;
    res.source = std::move(mutated);
    res.line = site.line;
    res.site_index = idx;
    res.description = std::move(what);
    return res;
  }
  res.description = "every candidate site yielded an invalid mutant";
  return res;
}

}  // namespace nfactor::fuzz
