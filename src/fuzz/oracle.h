// Differential equivalence oracle — the judgment half of the fuzzing
// subsystem (docs/fuzzing.md). One generated program is pushed through
// the synthesis pipeline under a matrix of configurations (simplify
// off/on × jobs 1/N) and each leg's synthesized model is differentially
// tested against the concrete runtime on a shared packet batch; on top
// of that the oracle checks path-partition exclusivity (every concrete
// packet satisfies exactly one non-truncated symbolic path) and that
// parallel SE stays byte-identical to serial SE.
//
// The third matrix axis from the issue — expression interning on/off —
// is a process-start environment toggle (NFACTOR_SYMEX_INTERN=0), so it
// cannot be flipped per leg in-process; CI runs the whole fuzz smoke
// under both settings instead (see .github/workflows/ci.yml fuzz-smoke).
#pragma once

#include <string>
#include <vector>

#include "netsim/packet.h"

namespace nfactor::fuzz {

enum class FailureClass : std::uint8_t {
  kNone,            ///< all legs agreed
  kFrontendReject,  ///< lexer/parser/sema/transform refused the program
  kCrash,           ///< pipeline or an interpreter threw unexpectedly
  kDivergence,      ///< model output != runtime output, or bad partition
  kCompiledDivergence,  ///< dataplane engine output != model interpreter
  kShardedDivergence,   ///< a shard's output != its reference engine
  kNondeterminism,  ///< legs that must agree byte-for-byte did not
};

std::string to_string(FailureClass c);

struct OracleOptions {
  int packets = 200;               ///< generated packets per program
  std::uint64_t packet_seed = 1;   ///< PacketGen seed (per-program mixed in)
  bool include_edge_packets = true;  ///< append PacketGen::edge_cases()
  std::vector<int> jobs_legs = {1, 4};  ///< SE worker widths to cross-check
  bool check_partition = true;
  int partition_packets = 50;      ///< packets sampled for the partition check
  /// Attach synthesis provenance to divergence reports: the implicated
  /// model entry and the source lines that produced it (nf-fuzz
  /// --provenance). Off by default — attribution replays the model
  /// interpreter on partition failures.
  bool attach_provenance = false;
  /// Compile each non-degraded leg's model (src/dataplane/) and replay
  /// the shared batch through the compiled engine beside the model
  /// interpreter; any disagreement in matched entry, emitted packets, or
  /// final oisVar state is a kCompiledDivergence. On by default — the
  /// dataplane compiler rides the same differential wall as everything
  /// else (nf-fuzz --no-compiled-leg to disable).
  bool compiled_leg = true;
  /// Replay the compiled leg a second time on the threaded (tier-2)
  /// engine — computed-goto dispatch must match the model interpreter
  /// exactly like the table walk does (nf-fuzz --no-threaded-leg).
  bool threaded_leg = true;
  /// Run the baseline leg's model through ShardedDataplane at 2 and 3
  /// shards and hold every shard to its reference contract: verdicts,
  /// sends, and post-state byte-equal to a single engine fed that
  /// shard's packet subsequence. Valid for every generated program —
  /// including ones with global, non-flow-partitionable state — because
  /// the contract is per shard, not cross-shard (nf-fuzz
  /// --no-sharded-leg).
  bool sharded_leg = true;
};

struct OracleReport {
  FailureClass cls = FailureClass::kNone;
  std::string leg;     ///< failing leg, e.g. "simplify=on jobs=4"
  std::string detail;  ///< first mismatch / exception message
  /// True when any leg's symbolic execution degraded (path cap, timeout,
  /// truncation): the model may legitimately be partial there, so
  /// equivalence is not required and the program does not count as a
  /// failure — it is recorded so the fuzzer can report coverage honestly.
  bool degraded = false;
  /// ExecPath::signature() of every baseline-leg slice path — the
  /// branch-history coverage feedback the fuzzer steers generation with.
  std::vector<std::string> path_signatures;

  /// Provenance attachment (OracleOptions::attach_provenance, divergence
  /// reports only): the model entry whose rule the diverging packet
  /// matched (-1 = default drop), the source lines of the path that
  /// produced that rule, and a one-line summary naming them.
  int implicated_entry = -1;
  std::vector<int> implicated_lines;
  std::string implicated_summary;

  /// A verdict the fuzzer must act on (shrink + report).
  bool failed() const {
    return cls == FailureClass::kCrash || cls == FailureClass::kDivergence ||
           cls == FailureClass::kCompiledDivergence ||
           cls == FailureClass::kShardedDivergence ||
           cls == FailureClass::kNondeterminism;
  }
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(OracleOptions opts = {});

  /// Judge one program. Deterministic in (source, options).
  OracleReport run(const std::string& source) const;

  /// The shared concrete packet batch legs are tested on (exposed for
  /// tests asserting edge-value coverage).
  std::vector<netsim::Packet> packet_batch() const;

  const OracleOptions& options() const { return opts_; }

 private:
  OracleOptions opts_;
};

}  // namespace nfactor::fuzz
