#include "fuzz/corpus.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nfactor::fuzz {

namespace fs = std::filesystem;

namespace {

std::string today_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday);
  return buf;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == '\t') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

CorpusManager::CorpusManager(std::string dir) : dir_(std::move(dir)) {}

std::string CorpusManager::manifest_path() const {
  return (fs::path(dir_) / "MANIFEST.tsv").string();
}

std::vector<CorpusEntry> CorpusManager::load() const {
  std::vector<CorpusEntry> entries;
  std::ifstream manifest(manifest_path());
  if (!manifest) return entries;  // empty corpus is a valid corpus

  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto cols = split_tabs(line);
    if (cols.size() != 4) {
      throw std::runtime_error("corpus manifest: malformed row: " + line);
    }
    CorpusEntry e;
    e.file = cols[0];
    e.seed = std::stoull(cols[1]);
    e.classification = cols[2];
    e.first_seen = cols[3];

    const fs::path p = fs::path(dir_) / e.file;
    std::ifstream in(p);
    if (!in) {
      throw std::runtime_error("corpus manifest lists missing file: " +
                               p.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    e.source = ss.str();
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string CorpusManager::add(const std::string& stem, std::uint64_t seed,
                               const std::string& classification,
                               const std::string& source,
                               std::string first_seen) {
  if (first_seen.empty()) first_seen = today_utc();
  fs::create_directories(dir_);

  const std::string file = stem + ".nf";
  {
    std::ofstream out(fs::path(dir_) / file);
    if (!out) {
      throw std::runtime_error("corpus: cannot write " + file + " in " + dir_);
    }
    out << source;
  }

  const bool fresh = !fs::exists(manifest_path());
  std::ofstream manifest(manifest_path(), std::ios::app);
  if (!manifest) {
    throw std::runtime_error("corpus: cannot append manifest in " + dir_);
  }
  if (fresh) {
    manifest << "# nf-fuzz regression corpus: name\tseed\tclassification\t"
                "first-seen (docs/fuzzing.md)\n";
  }
  manifest << file << '\t' << seed << '\t' << classification << '\t'
           << first_seen << '\n';
  return file;
}

}  // namespace nfactor::fuzz
