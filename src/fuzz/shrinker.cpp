#include "fuzz/shrinker.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "lang/parser.h"
#include "lang/sema.h"
#include "obs/obs.h"

namespace nfactor::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

int brace_delta(const std::string& line) {
  int d = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '#') break;  // line comment
    if (c == '{') ++d;
    if (c == '}') --d;
  }
  return d;
}

/// One removable region of the program, in lines.
struct Unit {
  std::size_t begin = 0;  // inclusive
  std::size_t end = 0;    // inclusive
  /// For `if`/`for` blocks: replace the whole unit with these interior
  /// lines instead of deleting it outright (the "unwrap" move). Empty
  /// means plain removal only.
  std::vector<std::vector<std::string>> unwraps;

  std::size_t size() const { return end - begin + 1; }
};

/// Statement lines and brace-balanced blocks, largest-first so whole
/// subtrees vanish before their leaves are nibbled.
std::vector<Unit> find_units(const std::vector<std::string>& lines) {
  std::vector<Unit> units;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string t = trimmed(lines[i]);
    if (t.empty() || t[0] == '#') continue;

    // Single-line statement (`x = ...;`, `send(...);`, `var ... ;`).
    if (t.back() == ';' && brace_delta(lines[i]) == 0) {
      units.push_back(Unit{i, i, {}});
      continue;
    }

    // A block opener: `if (...) {`, `for ... {`, `while (...) {`. Track
    // to its matching close, folding `} else {` continuations into one
    // unit. (`def`/`while (true)` skeleton lines are left alone — taking
    // those out rarely yields a parseable program.)
    const bool opener = (t.rfind("if ", 0) == 0 || t.rfind("if(", 0) == 0 ||
                         t.rfind("for ", 0) == 0) &&
                        brace_delta(lines[i]) > 0;
    if (!opener) continue;

    int depth = 0;
    std::size_t j = i;
    std::vector<std::pair<std::size_t, std::size_t>> arms;  // interior spans
    std::size_t arm_begin = i + 1;
    bool ok = false;
    for (; j < lines.size(); ++j) {
      depth += brace_delta(lines[j]);
      const std::string tj = trimmed(lines[j]);
      if (depth == 1 && j > i && tj.rfind("} else", 0) == 0) {
        arms.emplace_back(arm_begin, j - 1);
        arm_begin = j + 1;
      }
      if (depth == 0 && j > i) {
        arms.emplace_back(arm_begin, j - 1);
        ok = true;
        break;
      }
    }
    if (!ok) continue;

    Unit u{i, j, {}};
    for (const auto& [b, e] : arms) {
      if (b > e) continue;
      std::vector<std::string> interior(lines.begin() + static_cast<long>(b),
                                        lines.begin() + static_cast<long>(e) + 1);
      // Outdent by two spaces so the unwrapped arm sits at its parent's
      // depth (cosmetic; the parser does not care).
      for (auto& l : interior) {
        if (l.rfind("  ", 0) == 0) l.erase(0, 2);
      }
      u.unwraps.push_back(std::move(interior));
    }
    units.push_back(std::move(u));
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) { return a.size() > b.size(); });
  return units;
}

bool parses(const std::string& source) {
  try {
    lang::Program p = lang::parse(source, "<shrink>");
    lang::analyze(p);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> apply(const std::vector<std::string>& lines,
                               const Unit& u,
                               const std::vector<std::string>* replacement) {
  std::vector<std::string> out(lines.begin(),
                               lines.begin() + static_cast<long>(u.begin));
  if (replacement != nullptr) {
    out.insert(out.end(), replacement->begin(), replacement->end());
  }
  out.insert(out.end(), lines.begin() + static_cast<long>(u.end) + 1,
             lines.end());
  return out;
}

}  // namespace

Shrinker::Shrinker(FailPredicate still_fails)
    : still_fails_(std::move(still_fails)) {}

Shrinker Shrinker::for_oracle(const DifferentialOracle& oracle,
                              FailureClass cls) {
  return Shrinker([&oracle, cls](const std::string& src) {
    return oracle.run(src).cls == cls;
  });
}

ShrinkResult Shrinker::shrink(const std::string& source) const {
  OBS_SPAN("fuzz.shrink");
  ShrinkResult res;
  res.source = source;
  if (!parses(source)) return res;  // not ours to minimize

  std::vector<std::string> lines = split_lines(source);
  bool progress = true;
  // The fixed point arrives in a handful of passes on generator-sized
  // programs; the bound is a safety valve, not a tuning knob.
  while (progress && res.rounds < 64) {
    progress = false;
    ++res.rounds;
    const auto units = find_units(lines);
    for (const Unit& u : units) {
      if (u.end >= lines.size()) continue;  // stale against current lines

      std::vector<const std::vector<std::string>*> replacements;
      replacements.push_back(nullptr);  // plain removal first: biggest win
      for (const auto& arm : u.unwraps) replacements.push_back(&arm);

      for (const auto* repl : replacements) {
        const auto candidate_lines = apply(lines, u, repl);
        const std::string candidate = join_lines(candidate_lines);
        if (candidate.size() >= join_lines(lines).size()) continue;
        if (!parses(candidate)) continue;
        ++res.candidates_tried;
        OBS_COUNT("fuzz.shrink.candidates");
        if (!still_fails_(candidate)) continue;
        lines = candidate_lines;
        ++res.candidates_kept;
        OBS_COUNT("fuzz.shrink.kept");
        progress = true;
        break;  // units are stale now; rescan
      }
      if (progress) break;
    }
  }
  res.source = join_lines(lines);
  return res;
}

}  // namespace nfactor::fuzz
