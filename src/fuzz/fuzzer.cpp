#include "fuzz/fuzzer.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "fuzz/corpus.h"
#include "fuzz/shrinker.h"
#include "obs/obs.h"

namespace nfactor::fuzz {

std::string FuzzSummary::to_string() const {
  std::ostringstream os;
  os << "programs=" << programs << " rejects=" << frontend_rejects
     << " degraded=" << degraded << " divergences=" << divergences
     << " compiled_divergences=" << compiled_divergences
     << " sharded_divergences=" << sharded_divergences << " crashes=" << crashes
     << " nondet=" << nondeterminism
     << " unique_signatures=" << unique_signatures;
  return os.str();
}

Fuzzer::Fuzzer(FuzzOptions opts) : opts_(std::move(opts)) {}

FuzzSummary Fuzzer::run() {
  OBS_SPAN("fuzz.run");
  FuzzSummary sum;
  ProgramGen gen(opts_.seed, opts_.gen);
  DifferentialOracle oracle(opts_.oracle);
  std::set<std::string> seen_signatures;

  for (int i = 0; i < opts_.budget; ++i) {
    const GeneratedProgram prog = gen.generate();
    ++sum.programs;
    OBS_COUNT("fuzz.programs");

    const OracleReport report = oracle.run(prog.source);
    if (report.degraded) {
      ++sum.degraded;
      OBS_COUNT("fuzz.degraded");
    }

    // Coverage feedback: count signatures this program saw first.
    std::size_t fresh = 0;
    for (const auto& sig : report.path_signatures) {
      if (seen_signatures.insert(sig).second) ++fresh;
    }
    gen.note_coverage(prog.structure, fresh);
    OBS_COUNT_N("fuzz.signatures.fresh", fresh);

    if (opts_.verbose) {
      std::fprintf(stderr, "nf-fuzz: #%d seed=%llu %s %s%s\n", i,
                   static_cast<unsigned long long>(prog.seed),
                   transform::to_string(prog.structure).c_str(),
                   to_string(report.cls).c_str(),
                   report.degraded ? " (degraded)" : "");
    }

    if (report.cls == FailureClass::kFrontendReject) {
      // A generator bug, not a pipeline bug: the grammar promised valid
      // programs. Count it; a nonzero rate shows up in the summary.
      ++sum.frontend_rejects;
      OBS_COUNT("fuzz.frontend_rejects");
      continue;
    }
    if (!report.failed()) continue;

    switch (report.cls) {
      case FailureClass::kDivergence: ++sum.divergences; break;
      case FailureClass::kCompiledDivergence: ++sum.compiled_divergences; break;
      case FailureClass::kShardedDivergence: ++sum.sharded_divergences; break;
      case FailureClass::kCrash: ++sum.crashes; break;
      case FailureClass::kNondeterminism: ++sum.nondeterminism; break;
      default: break;
    }
    OBS_COUNT("fuzz.failures");

    FuzzFinding f;
    f.seed = prog.seed;
    f.structure = prog.structure;
    f.cls = report.cls;
    f.leg = report.leg;
    f.detail = report.detail;
    f.source = prog.source;
    f.shrunk_source = prog.source;
    f.implicated_entry = report.implicated_entry;
    f.implicated_lines = report.implicated_lines;
    f.implicated_summary = report.implicated_summary;
    if (!f.implicated_summary.empty()) {
      OBS_COUNT("fuzz.provenance.attributed");
      OBS_COUNT_N("fuzz.provenance.implicated_lines",
                  f.implicated_lines.size());
    }

    if (opts_.shrink) {
      const Shrinker shrinker = Shrinker::for_oracle(oracle, report.cls);
      const ShrinkResult sr = shrinker.shrink(prog.source);
      f.shrunk_source = sr.source;
      OBS_HIST("fuzz.shrink.rounds", sr.rounds);
    }

    if (!opts_.corpus_dir.empty()) {
      CorpusManager corpus(opts_.corpus_dir);
      std::ostringstream stem;
      stem << "repro_" << to_string(report.cls) << "_" << std::hex << f.seed;
      f.corpus_file = corpus.add(stem.str(), f.seed, to_string(report.cls),
                                 f.shrunk_source);
    }
    sum.findings.push_back(std::move(f));
  }

  sum.unique_signatures = seen_signatures.size();
  OBS_GAUGE("fuzz.signatures.unique", sum.unique_signatures);
  return sum;
}

}  // namespace nfactor::fuzz
