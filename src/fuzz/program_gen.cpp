#include "fuzz/program_gen.h"

#include <algorithm>

namespace nfactor::fuzz {

using transform::Structure;

GenOptions GenOptions::legacy() {
  GenOptions o;
  o.w_canonical = 1;
  o.w_callback = 0;
  o.w_consumer_producer = 0;
  o.w_socket = 0;
  o.config_scalars = 2;
  o.state_scalars = 2;
  o.state_maps = 1;
  o.send_ports = 3;
  o.allow_map_reads = false;
  o.allow_compound_conds = false;
  o.allow_for_loops = false;
  return o;
}

ProgramGen::ProgramGen(std::uint64_t seed, GenOptions opts)
    : rng_(seed), opts_(opts), next_seed_(seed) {}

int ProgramGen::rnd(int n) { return static_cast<int>(rng_() % static_cast<std::uint64_t>(n)); }

int ProgramGen::pick(std::initializer_list<int> xs) {
  auto it = xs.begin();
  std::advance(it, static_cast<long>(rnd(static_cast<int>(xs.size()))));
  return *it;
}

int ProgramGen::shape_weight(Structure s) const {
  int base = 0;
  switch (s) {
    case Structure::kCanonicalLoop: base = opts_.w_canonical; break;
    case Structure::kCallback: base = opts_.w_callback; break;
    case Structure::kConsumerProducer: base = opts_.w_consumer_producer; break;
    case Structure::kNestedLoop: base = opts_.w_socket; break;
  }
  if (base <= 0) return 0;
  const double bonus = yield_bonus_[static_cast<std::size_t>(s)];
  return std::max(1, static_cast<int>(base * (1.0 + bonus)));
}

Structure ProgramGen::pick_structure() {
  static constexpr Structure kShapes[] = {
      Structure::kCanonicalLoop, Structure::kCallback,
      Structure::kConsumerProducer, Structure::kNestedLoop};
  int total = 0;
  for (const Structure s : kShapes) total += shape_weight(s);
  if (total == 0) return Structure::kCanonicalLoop;
  int roll = rnd(total);
  for (const Structure s : kShapes) {
    roll -= shape_weight(s);
    if (roll < 0) return s;
  }
  return Structure::kCanonicalLoop;
}

void ProgramGen::note_coverage(Structure structure, std::size_t fresh) {
  // Bounded multiplicative bandit: structures that keep surfacing new
  // path signatures drift up to 3x their base weight; dry ones decay.
  double& b = yield_bonus_[static_cast<std::size_t>(structure)];
  if (fresh > 0) {
    b = std::min(2.0, b + 0.25 * static_cast<double>(std::min<std::size_t>(fresh, 4)));
  } else {
    b = std::max(0.0, b - 0.25);
  }
}

std::string ProgramGen::field(bool writable_only) {
  // Readable fields and their plausible comparison constants live in
  // atom_cond(); here only the name. `len`/`in_port` are read-only.
  static const char* kReadable[] = {"dport",    "sport",  "ip_proto",
                                    "ip_ttl",   "len",    "tcp_flags",
                                    "ip_tos",   "tcp_win"};
  static const char* kWritable[] = {"ip_ttl", "ip_tos", "dport", "sport",
                                    "tcp_win"};
  if (writable_only) return kWritable[rnd(5)];
  return kReadable[rnd(8)];
}

std::string ProgramGen::map_key(int map_idx, const std::string& pkt) {
  // Each map has a fixed key shape so key types stay consistent across
  // all reads/writes of one program.
  switch (map_idx % 3) {
    case 0: return pkt + ".ip_src";
    case 1: return "(" + pkt + ".ip_src, " + pkt + ".sport)";
    default: return "(" + pkt + ".ip_src, " + pkt + ".ip_dst, " + pkt + ".ip_proto)";
  }
}

std::string ProgramGen::atom_cond(const std::string& pkt) {
  switch (rnd(7)) {
    case 0: {  // field vs per-field plausible constant
      const std::string f = field();
      if (f == "dport" || f == "sport") {
        return pkt + "." + f + (rnd(2) ? " == " : " != ") +
               std::to_string(pick({0, 23, 80, 443, 65535}));
      }
      if (f == "ip_proto") {
        return pkt + ".ip_proto == " + std::to_string(pick({6, 17}));
      }
      if (f == "ip_ttl") {
        return pkt + ".ip_ttl " + (rnd(2) ? "< " : ">= ") +
               std::to_string(pick({1, 64, 255}));
      }
      if (f == "len") {
        return pkt + ".len " + (rnd(2) ? "< " : ">= ") +
               std::to_string(pick({0, 16, 64, 512}));
      }
      if (f == "tcp_flags") {
        return pkt + ".tcp_flags == " + std::to_string(pick({0, 2, 16, 18}));
      }
      if (f == "ip_tos") return pkt + ".ip_tos == " + std::to_string(rnd(2));
      return pkt + ".tcp_win " + (rnd(2) ? "< " : ">= ") +
             std::to_string(pick({1024, 65535}));
    }
    case 1:
      return pkt + ".dport == CFG" + std::to_string(rnd(opts_.config_scalars));
    case 2:
      return "CFG" + std::to_string(rnd(opts_.config_scalars)) + " == " +
             std::to_string(pick({0, 1, 2, 80}));
    case 3:
      return "st" + std::to_string(rnd(opts_.state_scalars)) + " > " +
             std::to_string(pick({0, 2, 5}));
    case 4: {
      const int m = rnd(opts_.state_maps);
      return map_key(m, pkt) + " in m" + std::to_string(m);
    }
    case 5:
      return "(" + pkt + ".tcp_flags & " + std::to_string(pick({2, 4, 16})) +
             ") != 0";
    default: {
      const int m = rnd(opts_.state_maps);
      return "!(" + map_key(m, pkt) + " in m" + std::to_string(m) + ")";
    }
  }
}

std::string ProgramGen::cond(const std::string& pkt, int depth) {
  if (!opts_.allow_compound_conds || depth > 0 || rnd(3) != 0) {
    return atom_cond(pkt);
  }
  switch (rnd(3)) {
    case 0: return atom_cond(pkt) + " && " + atom_cond(pkt);
    case 1: return atom_cond(pkt) + " || " + atom_cond(pkt);
    default: return "!(" + atom_cond(pkt) + ")";
  }
}

std::string ProgramGen::value_expr(const std::string& pkt) {
  switch (rnd(4)) {
    case 0: return std::to_string(1 + rnd(4));
    case 1: return "st" + std::to_string(rnd(opts_.state_scalars));
    case 2: return pkt + ".len";
    default: return "CFG" + std::to_string(rnd(opts_.config_scalars));
  }
}

void ProgramGen::emit_stmts(std::ostringstream& os, const std::string& pkt,
                            int n, int depth) {
  const std::string pad(static_cast<std::size_t>(4 + depth * 2), ' ');
  for (int i = 0; i < n; ++i) {
    switch (rnd(12)) {
      case 0:
        os << pad << "st" << rnd(opts_.state_scalars) << " = st"
           << rnd(opts_.state_scalars) << " + " << (1 + rnd(3)) << ";\n";
        break;
      case 1:
        os << pad << "st" << rnd(opts_.state_scalars) << " = st"
           << rnd(opts_.state_scalars) << " + " << pkt << ".len;\n";
        break;
      case 2: {  // map write (a weak update when depth > 0)
        const int m = rnd(opts_.state_maps);
        os << pad << "m" << m << "[" << map_key(m, pkt)
           << "] = " << value_expr(pkt) << ";\n";
        break;
      }
      case 3:
        if (opts_.allow_header_rewrites) {
          const std::string f = field(/*writable_only=*/true);
          os << pad << pkt << "." << f << " = "
             << (rnd(3) == 0
                     ? "CFG" + std::to_string(rnd(opts_.config_scalars))
                     : std::to_string(1 + rnd(64)))
             << ";\n";
        } else {
          os << pad << pkt << ".ip_ttl = " << (1 + rnd(64)) << ";\n";
        }
        break;
      case 4:
        os << pad << "send(" << pkt << ", " << rnd(opts_.send_ports) << ");\n";
        break;
      case 5:
        if (depth > 0) {
          os << pad << "return;\n";
          return;  // statements after return are unreachable
        }
        os << pad << "st0 = st0 + 1;\n";
        break;
      case 6: {  // membership-guarded map read
        if (!opts_.allow_map_reads) {
          os << pad << "st1 = st1 + 1;\n";
          break;
        }
        const int m = rnd(opts_.state_maps);
        const std::string key = map_key(m, pkt);
        os << pad << "if (" << key << " in m" << m << ") {\n";
        os << pad << "  st" << rnd(opts_.state_scalars) << " = st"
           << rnd(opts_.state_scalars) << " + m" << m << "[" << key << "];\n";
        os << pad << "}\n";
        break;
      }
      case 7: {  // concrete-bound for loop
        if (!opts_.allow_for_loops || depth >= opts_.max_depth) {
          os << pad << "st" << rnd(opts_.state_scalars) << " = 0;\n";
          break;
        }
        const int hi = 2 + rnd(2);
        os << pad << "for i in 0.." << hi << " {\n";
        os << pad << "  st" << rnd(opts_.state_scalars) << " = st"
           << rnd(opts_.state_scalars) << " + i;\n";
        os << pad << "}\n";
        break;
      }
      case 8:
        os << pad << "st" << rnd(opts_.state_scalars) << " = 0;\n";
        break;
      default: {
        if (depth >= opts_.max_depth) {
          os << pad << "st0 = st0 + 2;\n";
          break;
        }
        os << pad << "if (" << cond(pkt, depth) << ") {\n";
        emit_stmts(os, pkt, 1 + rnd(2), depth + 1);
        if (rnd(2)) {
          os << pad << "} else {\n";
          emit_stmts(os, pkt, 1 + rnd(2), depth + 1);
        }
        os << pad << "}\n";
        break;
      }
    }
  }
}

std::string ProgramGen::globals_section() {
  std::ostringstream g;
  for (int i = 0; i < opts_.config_scalars; ++i) {
    g << "var CFG" << i << " = " << pick({0, 1, 2, 23, 80, 443}) << ";\n";
  }
  for (int i = 0; i < opts_.state_scalars; ++i) {
    g << "var st" << i << " = 0;\n";
  }
  for (int i = 0; i < opts_.state_maps; ++i) {
    g << "var m" << i << " = {};\n";
  }
  return g.str();
}

std::string ProgramGen::body_section(const std::string& pkt) {
  std::ostringstream body;
  emit_stmts(body, pkt,
             opts_.min_stmts + rnd(opts_.max_stmts - opts_.min_stmts + 1), 0);
  // Guarantee at least one reachable send.
  body << "    send(" << pkt << ", 1);\n";
  return body.str();
}

std::string ProgramGen::gen_canonical() {
  std::ostringstream out;
  out << globals_section();
  out << "def main() {\n  while (true) {\n    pkt = recv(0);\n"
      << body_section("pkt") << "  }\n}\n";
  return out.str();
}

std::string ProgramGen::gen_callback() {
  std::ostringstream out;
  out << globals_section();
  out << "def handle(p) {\n" << body_section("p") << "}\n";
  out << "def main() {\n  sniff(" << rnd(2) << ", handle);\n}\n";
  return out.str();
}

std::string ProgramGen::gen_consumer_producer() {
  std::ostringstream out;
  out << globals_section();
  out << "var queue = [];\n";
  out << "def read_loop() {\n  while (true) {\n    p = recv(0);\n"
      << "    push(queue, p);\n  }\n}\n";
  out << "def proc_loop() {\n  while (true) {\n    p = pop(queue);\n"
      << body_section("p") << "  }\n}\n";
  out << "def main() {\n  spawn(read_loop);\n  spawn(proc_loop);\n}\n";
  return out.str();
}

std::string ProgramGen::gen_socket() {
  // The stylized Fig. 3 / Fig. 4d shape transform::unfold_sockets
  // recognizes, with randomized backend pool, selection policy, port,
  // and log-counter accounting between accept and fork.
  const int nservers = 2 + rnd(2);
  const int port = pick({80, 443, 8080});
  const bool round_robin = rnd(2) != 0;
  const int thresh = pick({100, 500, 1000});

  std::ostringstream out;
  out << "var MODE_RR = 1;\n";
  out << "var mode = " << (round_robin ? 1 : 2) << ";\n";
  out << "var BAL_PORT = " << port << ";\n";
  out << "var servers = [";
  for (int i = 0; i < nservers; ++i) {
    if (i) out << ", ";
    out << "(" << (i + 1) << "." << (i + 1) << "." << (i + 1) << "." << (i + 1)
        << ", " << pick({80, 8000}) << ")";
  }
  out << "];\n";
  out << "var idx = 0;\n";
  out << "var conn_stat = 0;\nvar busy_stat = 0;\n";
  out << "def main() {\n";
  out << "  lfd = sock_listen(BAL_PORT);\n";
  out << "  while (true) {\n";
  out << "    cfd = sock_accept(lfd);\n";
  out << "    if (mode == MODE_RR) {\n";
  out << "      server = servers[idx];\n";
  out << "      idx = (idx + 1) % len(servers);\n";
  out << "    } else {\n";
  out << "      server = servers[hash(cfd) % len(servers)];\n";
  out << "    }\n";
  out << "    conn_stat = conn_stat + 1;\n";
  out << "    if (conn_stat > " << thresh << ") {\n";
  out << "      busy_stat = busy_stat + 1;\n";
  out << "    }\n";
  out << "    child = fork();\n";
  out << "    if (child == 0) {\n";
  out << "      sfd = sock_connect(server[0], server[1]);\n";
  out << "      while (true) {\n";
  out << "        buf = sock_recv(cfd);\n";
  out << "        sock_send(sfd, buf);\n";
  out << "        buf2 = sock_recv(sfd);\n";
  out << "        sock_send(cfd, buf2);\n";
  out << "      }\n";
  out << "    }\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

GeneratedProgram ProgramGen::generate() {
  GeneratedProgram out;
  // Reseed per call with a splitmix64 step over (seed, call index): the
  // program body is a pure function of out.seed and the structure choice,
  // so a finding's program can be regenerated without replaying the whole
  // fuzzing run's RNG stream.
  std::uint64_t z = next_seed_ += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  out.seed = z ^ (z >> 31);
  rng_.seed(out.seed);
  out.structure = pick_structure();
  switch (out.structure) {
    case Structure::kCanonicalLoop: out.source = gen_canonical(); break;
    case Structure::kCallback: out.source = gen_callback(); break;
    case Structure::kConsumerProducer:
      out.source = gen_consumer_producer();
      break;
    case Structure::kNestedLoop: out.source = gen_socket(); break;
  }
  return out;
}

}  // namespace nfactor::fuzz
