// Replayable regression corpus (docs/fuzzing.md). Shrunk reproducers —
// and hand-picked seed programs covering the §3.2 structural variants —
// live as `.nf` files under tests/fixtures/fuzz/ next to a line-oriented
// manifest (MANIFEST.tsv: name, seed, classification, first-seen date).
// tests/fuzz_regression_test.cpp replays every entry through the full
// oracle matrix on each CI run; `nf-fuzz --replay` does the same from
// the command line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfactor::fuzz {

struct CorpusEntry {
  std::string file;            ///< file name within the corpus directory
  std::uint64_t seed = 0;      ///< generator seed that first produced it
  std::string classification;  ///< "seed" or a FailureClass string
  std::string first_seen;      ///< ISO date the entry was committed
  std::string source;          ///< the program text
};

class CorpusManager {
 public:
  explicit CorpusManager(std::string dir);

  /// Parse MANIFEST.tsv and read every listed program. Throws
  /// std::runtime_error on a manifest row whose file is missing —
  /// a corpus that lies about its contents should fail loudly.
  std::vector<CorpusEntry> load() const;

  /// Persist a reproducer: writes `<stem>.nf` (creating the directory
  /// if needed), appends a manifest row, and returns the file name.
  /// `first_seen` defaults to today's date (UTC).
  std::string add(const std::string& stem, std::uint64_t seed,
                  const std::string& classification, const std::string& source,
                  std::string first_seen = "");

  const std::string& dir() const { return dir_; }

 private:
  std::string manifest_path() const;
  std::string dir_;
};

}  // namespace nfactor::fuzz
