// The fuzzing loop (docs/fuzzing.md): generate — judge — shrink —
// persist. Couples fuzz::ProgramGen to fuzz::DifferentialOracle with
// path-signature coverage feedback (structures that keep producing
// unseen branch histories are generated more often), minimizes every
// failure with fuzz::Shrinker, and optionally persists reproducers via
// fuzz::CorpusManager. Publishes fuzz.* metrics into the default obs
// registry (docs/observability.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/program_gen.h"

namespace nfactor::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int budget = 200;  ///< programs to generate and judge
  GenOptions gen;
  OracleOptions oracle;
  bool shrink = true;
  std::string corpus_dir;  ///< when set, persist shrunk reproducers here
  bool verbose = false;    ///< per-program progress on stderr
};

struct FuzzFinding {
  std::uint64_t seed = 0;  ///< ProgramGen per-call seed of the program
  transform::Structure structure = transform::Structure::kCanonicalLoop;
  FailureClass cls = FailureClass::kNone;
  std::string leg;
  std::string detail;
  std::string source;         ///< the original failing program
  std::string shrunk_source;  ///< minimized reproducer (== source if unshrunk)
  std::string corpus_file;    ///< file name when persisted, else empty

  /// Provenance attachment (OracleOptions::attach_provenance): the
  /// implicated model entry / source lines / summary of a divergence,
  /// straight from the OracleReport. Empty otherwise.
  int implicated_entry = -1;
  std::vector<int> implicated_lines;
  std::string implicated_summary;
};

struct FuzzSummary {
  int programs = 0;
  int frontend_rejects = 0;
  int degraded = 0;  ///< programs whose SE degraded (equivalence waived)
  int divergences = 0;
  int compiled_divergences = 0;  ///< dataplane engine vs model interpreter
  int sharded_divergences = 0;   ///< a shard vs its reference engine
  int crashes = 0;
  int nondeterminism = 0;
  std::size_t unique_signatures = 0;  ///< distinct path signatures seen
  std::vector<FuzzFinding> findings;

  bool ok() const {
    return divergences + compiled_divergences + sharded_divergences + crashes +
               nondeterminism ==
           0;
  }
  std::string to_string() const;  ///< one-line digest
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions opts = {});

  /// Run the whole budget. Deterministic in the options (modulo
  /// first-seen dates written to the corpus manifest).
  FuzzSummary run();

 private:
  FuzzOptions opts_;
};

}  // namespace nfactor::fuzz
