#include "fuzz/oracle.h"

#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>

#include "dataplane/engine.h"
#include "dataplane/sharded.h"
#include "lang/diagnostics.h"
#include "model/interp.h"
#include "model/model.h"
#include "netsim/packet_gen.h"
#include "nfactor/pipeline.h"
#include "obs/obs.h"
#include "obs/provenance.h"
#include "runtime/interp.h"
#include "runtime/value.h"
#include "symex/concrete_eval.h"
#include "verify/equivalence.h"

namespace nfactor::fuzz {

std::string to_string(FailureClass c) {
  switch (c) {
    case FailureClass::kNone: return "ok";
    case FailureClass::kFrontendReject: return "frontend-reject";
    case FailureClass::kCrash: return "crash";
    case FailureClass::kDivergence: return "divergence";
    case FailureClass::kCompiledDivergence: return "compiled-divergence";
    case FailureClass::kShardedDivergence: return "sharded-divergence";
    case FailureClass::kNondeterminism: return "nondeterminism";
  }
  return "?";
}

namespace {

struct LegSpec {
  bool simplify = false;
  int jobs = 1;

  std::string name() const {
    return std::string("simplify=") + (simplify ? "on" : "off") +
           " jobs=" + std::to_string(jobs);
  }
};

/// Fill a report's implicated_* fields from the provenance of the model
/// entry that matched the diverging packet (-1 = default drop).
void attach_entry_provenance(OracleReport& report,
                             const obs::ModelProvenance& prov, int entry) {
  report.implicated_entry = entry;
  if (entry < 0 || static_cast<std::size_t>(entry) >= prov.rules.size()) {
    report.implicated_summary =
        "implicated: default drop (no model entry matched)";
    return;
  }
  const obs::RuleProvenance& rule = prov.rules[static_cast<std::size_t>(entry)];
  report.implicated_lines = rule.lines;
  std::ostringstream os;
  os << "implicated: rule " << entry << " (" << rule.action
     << ") from source lines ";
  for (std::size_t i = 0; i < rule.intervals.size(); ++i) {
    if (i) os << ",";
    os << rule.intervals[i].first;
    if (rule.intervals[i].second != rule.intervals[i].first) {
      os << "-" << rule.intervals[i].second;
    }
  }
  if (rule.intervals.empty()) os << "(none)";
  report.implicated_summary = os.str();
}

struct CompiledMismatch {
  std::string msg;
  int entry = -1;  ///< interpreter-side matched entry, for attribution
};

/// The compiled leg: lower the leg's model through the dataplane
/// compiler (with the same initial store the interpreter sees, so
/// config specialization is active) and replay the shared batch through
/// both backends in lockstep. They must agree on the matched entry,
/// every emitted packet and port, and — after the whole batch — the
/// final value of every output-impacting state variable.
std::optional<CompiledMismatch> check_compiled(
    const pipeline::PipelineResult& r,
    std::span<const netsim::Packet> packets, dataplane::Tier tier) {
  const auto store = model::initial_store(*r.module);
  dataplane::CompileOptions copts;
  copts.bindings = &store;
  const dataplane::CompiledTable table = dataplane::compile(r.model, copts);
  model::ModelInterpreter mi(r.model, store);
  dataplane::DataplaneEngine eng(table, store, dataplane::EngineOptions{tier});
  for (std::size_t k = 0; k < packets.size(); ++k) {
    const model::ModelOutput a = mi.process(packets[k]);
    const model::ModelOutput b = eng.process(packets[k]);
    const auto where = [&] {
      return " at packet " + std::to_string(k) + ": " +
             netsim::to_string(packets[k]);
    };
    if (a.matched_entry != b.matched_entry) {
      return CompiledMismatch{
          "compiled engine matched entry " + std::to_string(b.matched_entry) +
              ", interpreter matched " + std::to_string(a.matched_entry) +
              where(),
          a.matched_entry};
    }
    if (a.sent != b.sent) {
      return CompiledMismatch{"compiled engine output differs (entry " +
                                  std::to_string(a.matched_entry) + ")" +
                                  where(),
                              a.matched_entry};
    }
  }
  for (const std::string& v : r.model.ois_vars) {
    const runtime::Value* a = mi.state(v);
    const runtime::Value* b = eng.state(v);
    const bool same = (a == nullptr && b == nullptr) ||
                      (a != nullptr && b != nullptr && runtime::value_eq(*a, *b));
    if (!same) {
      return CompiledMismatch{"final state of '" + v +
                                  "' differs after the batch: interpreter " +
                                  (a ? runtime::to_string(*a) : "<absent>") +
                                  ", compiled " +
                                  (b ? runtime::to_string(*b) : "<absent>"),
                              -1};
    }
  }
  return std::nullopt;
}

/// The sharded leg: run the batch through ShardedDataplane at 2 and 3
/// shards and hold each shard to its reference contract — verdicts,
/// sends, and post-state byte-equal to a fresh single engine fed that
/// shard's packet subsequence in order. This is valid for every
/// generated program (global state included): a shard IS a single
/// engine over a sub-batch, so any disagreement is a real partition,
/// scatter, or worker-pool bug, never an artifact of non-partitionable
/// state.
std::optional<std::string> check_sharded(
    const pipeline::PipelineResult& r,
    std::span<const netsim::Packet> packets) {
  const auto store = model::initial_store(*r.module);
  dataplane::CompileOptions copts;
  copts.bindings = &store;
  const dataplane::CompiledTable table = dataplane::compile(r.model, copts);
  for (const int shards : {2, 3}) {
    dataplane::ShardOptions sopts;
    sopts.shards = shards;
    dataplane::ShardedDataplane sharded(table, store, sopts);
    dataplane::ShardedOutput out;
    sharded.execute_batch(packets, out);
    for (int s = 0; s < shards; ++s) {
      std::vector<netsim::Packet> sub;
      std::vector<std::size_t> sub_src;
      for (std::size_t i = 0; i < packets.size(); ++i) {
        if (out.shard_of[i] == s) {
          sub.push_back(packets[i]);
          sub_src.push_back(i);
        }
      }
      dataplane::DataplaneEngine ref(table, store);
      dataplane::BatchOutput rout;
      ref.execute_batch(sub, rout);
      const auto where = [&](std::size_t j) {
        return " (shards=" + std::to_string(shards) + " shard " +
               std::to_string(s) + " packet " + std::to_string(sub_src[j]) +
               ": " + netsim::to_string(sub[j]) + ")";
      };
      const auto& shard_out =
          out.shard_outputs()[static_cast<std::size_t>(s)];
      if (shard_out.matched.size() != sub.size()) {
        return "shard verdict count " + std::to_string(shard_out.matched.size()) +
               " != " + std::to_string(sub.size()) + " partitioned packets";
      }
      for (std::size_t j = 0; j < sub.size(); ++j) {
        if (shard_out.matched[j] != rout.matched[j] ||
            out.matched[sub_src[j]] != rout.matched[j]) {
          return "shard matched entry " + std::to_string(shard_out.matched[j]) +
                 ", reference matched " + std::to_string(rout.matched[j]) +
                 where(j);
        }
      }
      const auto rs = rout.sends();
      const auto ss = shard_out.sends();
      if (rs.size() != ss.size()) {
        return "shard emitted " + std::to_string(ss.size()) +
               " packets, reference emitted " + std::to_string(rs.size()) +
               " (shards=" + std::to_string(shards) + " shard " +
               std::to_string(s) + ")";
      }
      for (std::size_t j = 0; j < rs.size(); ++j) {
        const std::size_t src_j = static_cast<std::size_t>(rs[j].src);
        if (sub_src[src_j] != static_cast<std::size_t>(ss[j].src) ||
            rs[j].port != ss[j].port ||
            !(rs[j].packet() == ss[j].packet())) {
          return "shard send " + std::to_string(j) + " differs" + where(src_j);
        }
      }
      for (const std::string& v : r.model.ois_vars) {
        const runtime::Value* a = ref.state(v);
        const runtime::Value* b = sharded.engine(s).state(v);
        const bool same =
            (a == nullptr && b == nullptr) ||
            (a != nullptr && b != nullptr && runtime::value_eq(*a, *b));
        if (!same) {
          return "shard state of '" + v + "' differs from reference (shards=" +
                 std::to_string(shards) + " shard " + std::to_string(s) + ")";
        }
      }
    }
  }
  return std::nullopt;
}

struct PartitionError {
  std::string msg;
  int packet_index = -1;  ///< index into the shared batch
};

/// The partition check from the original property suite: every concrete
/// (packet, initial state) valuation must satisfy the constraints of
/// exactly one non-truncated symbolic path, and that path's send count
/// must predict the runtime's. Returns an error description or nullopt.
std::optional<PartitionError> check_partition(
    const pipeline::PipelineResult& r,
    std::span<const netsim::Packet> packets, int limit) {
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions opts;
  opts.jobs = 1;
  symex::ExecStats stats;
  const auto paths = se.run(opts, &stats);
  // A degraded whole-program run may genuinely miss regions of the input
  // space; exactness is only required of a complete path set.
  const bool complete = !pipeline::PipelineResult::se_degraded(stats);

  const auto store = model::initial_store(*r.module);
  int n = 0;
  for (const auto& pkt : packets) {
    if (++n > limit) break;
    symex::ConcreteEnv env;
    env.input_packet = &pkt;
    env.var = [&](const std::string& name) -> runtime::Value {
      if (name.starts_with("pkt.")) {
        const std::string f = name.substr(4);
        if (f == "__payload") return runtime::Value(runtime::Int{0});
        if (f == "in_port") return runtime::Value(runtime::Int{pkt.in_port});
        return runtime::Value(runtime::get_packet_field(pkt, f));
      }
      const auto it = store.find(name);
      if (it == store.end()) throw std::out_of_range(name);
      return it->second;
    };
    env.map_base = [&](const std::string& name) -> const runtime::MapV* {
      const auto it = store.find(name);
      if (it == store.end() || !it->second.is_map()) return nullptr;
      return &it->second.as_map();
    };

    int sat_paths = 0;
    std::size_t sat_sends = 0;
    for (const auto& p : paths) {
      if (p.truncated) continue;
      bool sat = true;
      try {
        for (const auto& c : p.constraints) {
          if (!symex::eval_concrete_bool(c, env)) {
            sat = false;
            break;
          }
        }
      } catch (const std::exception&) {
        sat = false;
      }
      if (sat) {
        ++sat_paths;
        sat_sends = p.sends.size();
      }
    }
    if (sat_paths > 1 || (complete && sat_paths != 1)) {
      return PartitionError{"packet satisfies " + std::to_string(sat_paths) +
                                " paths (want 1): " + netsim::to_string(pkt),
                            n - 1};
    }
    if (sat_paths == 1) {
      runtime::Interpreter interp(*r.module);
      const auto out = interp.process(pkt);
      if (out.sent.size() != sat_sends) {
        return PartitionError{
            "satisfied path predicts " + std::to_string(sat_sends) +
                " sends, runtime sent " + std::to_string(out.sent.size()) +
                ": " + netsim::to_string(pkt),
            n - 1};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

DifferentialOracle::DifferentialOracle(OracleOptions opts)
    : opts_(std::move(opts)) {}

std::vector<netsim::Packet> DifferentialOracle::packet_batch() const {
  netsim::GenConfig cfg;
  cfg.udp_fraction = 0.3;
  netsim::PacketGen pgen(opts_.packet_seed, cfg);
  auto packets = pgen.batch(opts_.packets);
  if (opts_.include_edge_packets) {
    const auto edges = netsim::PacketGen::edge_cases();
    packets.insert(packets.end(), edges.begin(), edges.end());
  }
  return packets;
}

OracleReport DifferentialOracle::run(const std::string& source) const {
  OBS_SPAN("fuzz.oracle");
  OracleReport report;
  const auto packets = packet_batch();

  std::vector<LegSpec> legs;
  for (const bool simplify : {false, true}) {
    for (const int jobs : opts_.jobs_legs) {
      legs.push_back(LegSpec{simplify, jobs});
    }
  }

  // Model renderings per (simplify, jobs) — legs that differ only in
  // jobs promise byte-identical models (src/symex/executor.h).
  std::map<std::pair<bool, int>, std::string> model_text;
  std::optional<pipeline::PipelineResult> baseline;  // simplify=off, jobs=1

  for (const LegSpec& leg : legs) {
    pipeline::PipelineOptions popts;
    popts.simplify.enabled = leg.simplify;
    popts.simplify.fold_config = leg.simplify;
    popts.jobs = leg.jobs;

    pipeline::PipelineResult r;
    try {
      r = pipeline::run_source(source, "fuzz", popts);
    } catch (const lang::FrontendError& e) {
      // Parse/sema/transform run before any leg option applies, so a
      // reject is leg-independent: classify and stop.
      report.cls = FailureClass::kFrontendReject;
      report.leg = leg.name();
      report.detail = e.what();
      return report;
    } catch (const std::exception& e) {
      report.cls = FailureClass::kCrash;
      report.leg = leg.name();
      report.detail = std::string("pipeline: ") + e.what();
      return report;
    }

    const bool leg_degraded = r.degraded();
    report.degraded = report.degraded || leg_degraded;

    if (!leg_degraded) {
      try {
        const auto diff =
            verify::differential_test(*r.module, r.cats, r.model, packets);
        if (diff.mismatches != 0) {
          report.cls = FailureClass::kDivergence;
          report.leg = leg.name();
          report.detail = diff.details.empty()
                              ? std::to_string(diff.mismatches) + " mismatches"
                              : diff.details[0];
          if (opts_.attach_provenance && diff.has_first_mismatch) {
            attach_entry_provenance(report, r.provenance,
                                    diff.first_mismatch_entry);
          }
          return report;
        }
      } catch (const std::exception& e) {
        report.cls = FailureClass::kCrash;
        report.leg = leg.name();
        report.detail = std::string("interpreter: ") + e.what();
        return report;
      }
      // Both dataplane tiers ride the compiled leg: tier 1 (table walk)
      // and tier 2 (threaded code) each replay the batch in lockstep
      // with the model interpreter.
      struct TierLeg {
        dataplane::Tier tier;
        bool enabled;
        const char* label;
      };
      const TierLeg tier_legs[] = {
          {dataplane::Tier::kTableWalk, opts_.compiled_leg, "compiled"},
          {dataplane::Tier::kThreaded,
           opts_.compiled_leg && opts_.threaded_leg, "threaded"},
      };
      for (const TierLeg& tl : tier_legs) {
        if (!tl.enabled) continue;
        try {
          if (auto mm = check_compiled(r, packets, tl.tier)) {
            report.cls = FailureClass::kCompiledDivergence;
            report.leg = leg.name() + " " + tl.label;
            report.detail = mm->msg;
            if (opts_.attach_provenance) {
              attach_entry_provenance(report, r.provenance, mm->entry);
            }
            return report;
          }
        } catch (const std::exception& e) {
          report.cls = FailureClass::kCrash;
          report.leg = leg.name() + " " + tl.label;
          report.detail = std::string(tl.label) + ": " + e.what();
          return report;
        }
      }
      if (opts_.sharded_leg && !leg.simplify && leg.jobs == 1) {
        try {
          if (auto err = check_sharded(r, packets)) {
            report.cls = FailureClass::kShardedDivergence;
            report.leg = "sharded";
            report.detail = *err;
            return report;
          }
        } catch (const std::exception& e) {
          report.cls = FailureClass::kCrash;
          report.leg = "sharded";
          report.detail = std::string("sharded: ") + e.what();
          return report;
        }
      }
    }

    model_text[{leg.simplify, leg.jobs}] = model::to_text(r.model);
    if (!leg.simplify && leg.jobs == 1) baseline = std::move(r);
  }

  // Parallel SE must not change the model at either simplify setting.
  for (const bool simplify : {false, true}) {
    const auto first = model_text.find({simplify, opts_.jobs_legs.front()});
    for (const int jobs : opts_.jobs_legs) {
      const auto it = model_text.find({simplify, jobs});
      if (it != model_text.end() && first != model_text.end() &&
          it->second != first->second) {
        report.cls = FailureClass::kNondeterminism;
        report.leg = LegSpec{simplify, jobs}.name();
        report.detail = "model differs from jobs=" +
                        std::to_string(opts_.jobs_legs.front()) + " leg";
        return report;
      }
    }
  }

  if (baseline) {
    for (const auto& p : baseline->slice_paths) {
      report.path_signatures.push_back(p.signature());
    }
    if (opts_.check_partition) {
      try {
        if (auto err = check_partition(*baseline, packets,
                                       opts_.partition_packets)) {
          report.cls = FailureClass::kDivergence;
          report.leg = "partition";
          report.detail = err->msg;
          if (opts_.attach_provenance && err->packet_index >= 0) {
            // Replay the (stateful) model interpreter up to the
            // offending packet to learn which rule it lands on.
            try {
              model::ModelInterpreter mi(baseline->model,
                                         model::initial_store(*baseline->module));
              model::ModelOutput mo;
              for (int k = 0; k <= err->packet_index &&
                              k < static_cast<int>(packets.size());
                   ++k) {
                mo = mi.process(packets[static_cast<std::size_t>(k)]);
              }
              attach_entry_provenance(report, baseline->provenance,
                                      mo.matched_entry);
            } catch (const std::exception&) {
              // Attribution is best-effort; the divergence verdict stands.
            }
          }
          return report;
        }
      } catch (const std::exception& e) {
        report.cls = FailureClass::kCrash;
        report.leg = "partition";
        report.detail = e.what();
        return report;
      }
    }
  }
  return report;
}

}  // namespace nfactor::fuzz
