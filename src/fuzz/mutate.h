// Public fault-injection API (docs/diffing.md). One deterministic
// mutator shared by the repair stage of nf-diff, the diff-fixture
// generators, and future fuzz campaigns: given an NF source and a fault
// class, pick a mutation site by seed and apply a *textual,
// line-preserving* edit, so the mutated program's source lines align
// 1:1 with the original's and provenance line numbers stay comparable
// across the two synthesized models.
//
// Three fault classes (the ProgramGen-injectable ones from ISSUE 7):
//   kWrongConstant      — an integer literal is off by a small delta
//   kInvertedGuard      — an if-condition is wrapped in !( ... )
//   kMissingStateUpdate — an assignment to a global is blanked out
//
// Site enumeration walks the parsed AST in program order, so the same
// (source, class, seed) triple always yields the same mutation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfactor::fuzz {

enum class FaultClass : std::uint8_t {
  kWrongConstant,
  kInvertedGuard,
  kMissingStateUpdate,
};

inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kWrongConstant,
    FaultClass::kInvertedGuard,
    FaultClass::kMissingStateUpdate,
};

std::string to_string(FaultClass c);

/// One place a fault of a given class can be injected. Offsets/lengths
/// are byte positions into the source string; `line`/`col` are the
/// 1-based location of the construct (the literal, the `if`, or the
/// assignment statement).
struct MutationSite {
  int line = 0;
  int col = 0;
  std::size_t offset = 0;  ///< start of the editable span
  std::size_t length = 0;  ///< span length (literal / `( .. )` / stmt incl ';')
  std::int64_t value = 0;  ///< kWrongConstant only: the literal's value
  std::string description;
};

/// Enumerate every injection site for `cls` in deterministic program
/// order (function bodies only; global initializers are never mutated so
/// the two models' config spaces stay aligned). Returns empty if the
/// source does not parse.
std::vector<MutationSite> mutation_sites(const std::string& source,
                                         FaultClass cls);

/// Targeted single-site edits — the building blocks `mutate` composes
/// and the repair search re-uses with explicit replacement values. All
/// three preserve the line count (and hence every other line's number).
std::string replace_constant(const std::string& source,
                             const MutationSite& site, std::int64_t new_value);
std::string invert_guard(const std::string& source, const MutationSite& site);
std::string blank_statement(const std::string& source,
                            const MutationSite& site);

struct MutationResult {
  bool ok = false;
  FaultClass cls = FaultClass::kWrongConstant;
  std::string source;        ///< mutated source (valid, re-parseable)
  int line = 0;              ///< the faulty line in the mutated source
  std::size_t site_index = 0;
  std::size_t site_count = 0;
  std::string description;   ///< human-readable account of the edit
};

/// Inject one fault of class `cls` into `source`, site chosen by
/// `seed`. Deterministic: the same (source, cls, seed) always produces
/// the same mutant. Starts at site `seed % n` and advances (wrapping)
/// past any site whose edit fails to re-parse or is a textual no-op, so
/// the call is total whenever any viable site exists; `ok == false`
/// means the source has no viable site for this class (or doesn't
/// parse).
MutationResult mutate(const std::string& source, FaultClass cls,
                      std::uint64_t seed);

}  // namespace nfactor::fuzz
