// Grammar-based NF program generator — the input half of the
// differential fuzzing subsystem (docs/fuzzing.md). Grown out of the
// private ProgramGen that used to live in tests/property_random_test.cpp:
// same seeded-determinism contract (one seed -> one program, forever),
// but with a much wider grammar — multiple config/state scalars and maps,
// nested and compound conditionals, guarded map reads, weak updates,
// header rewrites, several send ports — and the §3.2 structural variants
// (callback, consumer-producer, socket/TCP nested-loop) so
// transform::normalize and transform::unfold_sockets sit inside the
// fuzzed surface too.
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "transform/normalize.h"

namespace nfactor::fuzz {

/// Grammar knobs. Defaults generate the full mix; the structure weights
/// pick between the paper's Fig. 4 shapes (a weight of 0 disables a
/// shape). The Fuzzer nudges these weights with path-signature feedback.
struct GenOptions {
  // Structure weights (Fig. 4a-d).
  int w_canonical = 8;
  int w_callback = 3;
  int w_consumer_producer = 2;
  int w_socket = 2;

  int min_stmts = 2;       ///< top-level statements in the packet body
  int max_stmts = 6;
  int max_depth = 3;       ///< conditional nesting
  int config_scalars = 3;  ///< CFG0..CFGn-1
  int state_scalars = 3;   ///< st0..stn-1
  int state_maps = 2;      ///< m0..mn-1, each with a fixed key shape
  int send_ports = 4;      ///< send(pkt, 0..n-1)

  bool allow_header_rewrites = true;  ///< pkt.F = ... statements
  bool allow_map_reads = true;        ///< membership-guarded map lookups
  bool allow_compound_conds = true;   ///< &&, ||, ! conditions
  bool allow_for_loops = true;        ///< concrete-bound for loops

  /// The grammar the old tests/property_random_test.cpp generator spoke:
  /// canonical loop only, 2 configs, 2 state scalars, 1 map, 3 ports,
  /// no compound conditions / map reads / for loops.
  static GenOptions legacy();
};

struct GeneratedProgram {
  std::string source;
  transform::Structure structure = transform::Structure::kCanonicalLoop;
  std::uint64_t seed = 0;
};

class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed, GenOptions opts = {});

  /// The next program. Deterministic in (seed, opts, call index).
  GeneratedProgram generate();

  /// Coverage feedback: `fresh` is how many previously-unseen path
  /// signatures the last program of `structure` produced. Structures
  /// that keep yielding new behavior get their weight boosted (bounded),
  /// steering generation toward unexplored branch histories.
  void note_coverage(transform::Structure structure, std::size_t fresh);

 private:
  int shape_weight(transform::Structure s) const;
  transform::Structure pick_structure();

  int rnd(int n);                    // uniform in [0, n)
  int pick(std::initializer_list<int> xs);
  std::string field(bool writable_only = false);
  std::string map_key(int map_idx, const std::string& pkt);
  std::string cond(const std::string& pkt, int depth);
  std::string atom_cond(const std::string& pkt);
  std::string value_expr(const std::string& pkt);
  void emit_stmts(std::ostringstream& os, const std::string& pkt, int n,
                  int depth);
  std::string globals_section();
  std::string body_section(const std::string& pkt);

  std::string gen_canonical();
  std::string gen_callback();
  std::string gen_consumer_producer();
  std::string gen_socket();

  std::mt19937_64 rng_;
  GenOptions opts_;
  std::uint64_t next_seed_ = 0;  // splitmix64 walk; advanced per generate()
  // Feedback bonus per structure, indexed by Structure enum value.
  std::array<double, 4> yield_bonus_{};
};

}  // namespace nfactor::fuzz
