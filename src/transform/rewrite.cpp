#include "transform/rewrite.h"

namespace nfactor::transform {

using namespace lang;

ExprPtr rename_vars(const Expr& e,
                    const std::map<std::string, std::string>& renames) {
  switch (e.kind) {
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRef&>(e);
      const auto it = renames.find(v.name);
      return std::make_unique<VarRef>(it == renames.end() ? v.name : it->second,
                                      v.loc);
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const Unary&>(e);
      return std::make_unique<Unary>(u.op, rename_vars(*u.operand, renames),
                                     u.loc);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const Binary&>(e);
      return std::make_unique<Binary>(b.op, rename_vars(*b.lhs, renames),
                                      rename_vars(*b.rhs, renames), b.loc);
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const Call&>(e);
      std::vector<ExprPtr> args;
      args.reserve(c.args.size());
      for (const auto& a : c.args) args.push_back(rename_vars(*a, renames));
      return std::make_unique<Call>(c.callee, std::move(args), c.loc);
    }
    case ExprKind::kTupleLit: {
      const auto& t = static_cast<const TupleLit&>(e);
      std::vector<ExprPtr> elems;
      for (const auto& x : t.elems) elems.push_back(rename_vars(*x, renames));
      return std::make_unique<TupleLit>(std::move(elems), t.loc);
    }
    case ExprKind::kListLit: {
      const auto& l = static_cast<const ListLit&>(e);
      std::vector<ExprPtr> elems;
      for (const auto& x : l.elems) elems.push_back(rename_vars(*x, renames));
      return std::make_unique<ListLit>(std::move(elems), l.loc);
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const Index&>(e);
      return std::make_unique<Index>(rename_vars(*i.base, renames),
                                     rename_vars(*i.index, renames), i.loc);
    }
    case ExprKind::kField: {
      const auto& f = static_cast<const FieldRef&>(e);
      return std::make_unique<FieldRef>(rename_vars(*f.base, renames), f.field,
                                        f.loc);
    }
    default:
      return e.clone();
  }
}

StmtPtr rename_vars(const Stmt& s,
                    const std::map<std::string, std::string>& renames) {
  auto rename_name = [&](const std::string& n) {
    const auto it = renames.find(n);
    return it == renames.end() ? n : it->second;
  };
  switch (s.kind) {
    case StmtKind::kBlock: {
      const auto& b = static_cast<const Block&>(s);
      auto out = std::make_unique<Block>(b.loc);
      for (const auto& st : b.stmts) out->stmts.push_back(rename_vars(*st, renames));
      return out;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const Assign&>(s);
      auto out = std::make_unique<Assign>(a.loc);
      out->target = a.target;
      out->var = rename_name(a.var);
      out->field = a.field;
      out->index = a.index ? rename_vars(*a.index, renames) : nullptr;
      out->value = rename_vars(*a.value, renames);
      return out;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const If&>(s);
      auto out = std::make_unique<If>(i.loc);
      out->cond = rename_vars(*i.cond, renames);
      out->then_body = rename_vars(*i.then_body, renames);
      out->else_body = i.else_body ? rename_vars(*i.else_body, renames) : nullptr;
      return out;
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const While&>(s);
      auto out = std::make_unique<While>(w.loc);
      out->cond = rename_vars(*w.cond, renames);
      out->body = rename_vars(*w.body, renames);
      return out;
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const For&>(s);
      auto out = std::make_unique<For>(f.loc);
      out->var = rename_name(f.var);
      out->begin = rename_vars(*f.begin, renames);
      out->end = rename_vars(*f.end, renames);
      out->body = rename_vars(*f.body, renames);
      return out;
    }
    case StmtKind::kReturn: {
      const auto& r = static_cast<const Return&>(s);
      auto out = std::make_unique<Return>(r.loc);
      out->value = r.value ? rename_vars(*r.value, renames) : nullptr;
      return out;
    }
    case StmtKind::kExprStmt: {
      const auto& e = static_cast<const ExprStmt&>(s);
      auto out = std::make_unique<ExprStmt>(e.loc);
      out->expr = rename_vars(*e.expr, renames);
      return out;
    }
    default:
      return s.clone();
  }
}

}  // namespace nfactor::transform
