// §3.2 "Code Structure" normalizations: rewrite the four typical NF code
// structures (Fig. 4) into the canonical single packet-processing loop
// (Fig. 4a) that the lowerer and the analyses require.
//
//   Fig. 4b  callback           sniff(port, cb)            -> loop calling cb
//   Fig. 4c  consumer-producer  spawn(ReadLp); spawn(ProcLp) -> merged loop
//   Fig. 4d  nested loop        socket calls + fork()      -> unfold_sockets
//
// `normalize` detects which structure a program uses and applies the
// appropriate rewrite; canonical programs pass through unchanged.
#pragma once

#include "lang/ast.h"
#include "lang/diagnostics.h"

namespace nfactor::transform {

class TransformError : public lang::FrontendError {
  using FrontendError::FrontendError;
};

enum class Structure : std::uint8_t {
  kCanonicalLoop,     // Fig. 4a — already in canonical form
  kCallback,          // Fig. 4b
  kConsumerProducer,  // Fig. 4c
  kNestedLoop,        // Fig. 4d (socket-level)
};

std::string to_string(Structure s);

/// Identify the code structure of `prog` (by inspecting main()).
Structure detect_structure(const lang::Program& prog);

/// Fig. 4b: replace `sniff(port, cb)` in main with
/// `while (true) { pkt = recv(port); cb(pkt); }`.
lang::Program normalize_callback(const lang::Program& prog);

/// Fig. 4c: merge the producer loop (recv + queue push) and consumer loop
/// (queue pop + process) spawned from main into one canonical loop.
lang::Program normalize_consumer_producer(const lang::Program& prog);

/// Detect + dispatch. Nested-loop programs route through unfold_sockets
/// (see unfold_sockets.h for its recognizer's assumptions).
lang::Program normalize(const lang::Program& prog);

}  // namespace nfactor::transform
