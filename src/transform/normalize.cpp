#include "transform/normalize.h"

#include <functional>

#include "lang/builtins.h"
#include "transform/rewrite.h"
#include "transform/unfold_sockets.h"

namespace nfactor::transform {

using namespace lang;

namespace {

/// Find a top-level `name(...)` expression statement in a block.
const Call* find_call_stmt(const Block& b, const std::string& name,
                           std::size_t* index = nullptr) {
  for (std::size_t i = 0; i < b.stmts.size(); ++i) {
    const Stmt& s = *b.stmts[i];
    if (s.kind != StmtKind::kExprStmt) continue;
    const Expr& e = *static_cast<const ExprStmt&>(s).expr;
    if (e.kind != ExprKind::kCall) continue;
    const auto& c = static_cast<const Call&>(e);
    if (c.callee == name) {
      if (index) *index = i;
      return &c;
    }
  }
  return nullptr;
}

bool uses_builtin(const Program& prog, const std::string& name) {
  bool found = false;
  std::function<void(const Expr&)> scan_e = [&](const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      const auto& c = static_cast<const Call&>(e);
      if (c.callee == name) found = true;
      for (const auto& a : c.args) scan_e(*a);
    } else if (e.kind == ExprKind::kUnary) {
      scan_e(*static_cast<const Unary&>(e).operand);
    } else if (e.kind == ExprKind::kBinary) {
      scan_e(*static_cast<const Binary&>(e).lhs);
      scan_e(*static_cast<const Binary&>(e).rhs);
    } else if (e.kind == ExprKind::kIndex) {
      scan_e(*static_cast<const Index&>(e).base);
      scan_e(*static_cast<const Index&>(e).index);
    } else if (e.kind == ExprKind::kField) {
      scan_e(*static_cast<const FieldRef&>(e).base);
    } else if (e.kind == ExprKind::kTupleLit) {
      for (const auto& x : static_cast<const TupleLit&>(e).elems) scan_e(*x);
    } else if (e.kind == ExprKind::kListLit) {
      for (const auto& x : static_cast<const ListLit&>(e).elems) scan_e(*x);
    }
  };
  std::function<void(const Stmt&)> scan_s = [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& st : static_cast<const Block&>(s).stmts) scan_s(*st);
        break;
      case StmtKind::kAssign: {
        const auto& a = static_cast<const Assign&>(s);
        if (a.index) scan_e(*a.index);
        scan_e(*a.value);
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const If&>(s);
        scan_e(*i.cond);
        scan_s(*i.then_body);
        if (i.else_body) scan_s(*i.else_body);
        break;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const While&>(s);
        scan_e(*w.cond);
        scan_s(*w.body);
        break;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const For&>(s);
        scan_e(*f.begin);
        scan_e(*f.end);
        scan_s(*f.body);
        break;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const Return&>(s);
        if (r.value) scan_e(*r.value);
        break;
      }
      case StmtKind::kExprStmt:
        scan_e(*static_cast<const ExprStmt&>(s).expr);
        break;
      default:
        break;
    }
  };
  for (const auto& f : prog.funcs) scan_s(*f.body);
  return found;
}

const While* find_while_true(const Block& b) {
  for (const auto& s : b.stmts) {
    if (s->kind != StmtKind::kWhile) continue;
    const auto& w = static_cast<const While&>(*s);
    if (w.cond->kind == ExprKind::kBoolLit &&
        static_cast<const BoolLit&>(*w.cond).value) {
      return &w;
    }
  }
  return nullptr;
}

}  // namespace

std::string to_string(Structure s) {
  switch (s) {
    case Structure::kCanonicalLoop: return "canonical-loop";
    case Structure::kCallback: return "callback";
    case Structure::kConsumerProducer: return "consumer-producer";
    case Structure::kNestedLoop: return "nested-loop";
  }
  return "?";
}

Structure detect_structure(const Program& prog) {
  const FuncDef* main_fn = prog.find_func("main");
  if (main_fn == nullptr) {
    throw TransformError({0, 0}, "program has no main()");
  }
  if (uses_builtin(prog, "sock_listen") || uses_builtin(prog, "fork")) {
    return Structure::kNestedLoop;
  }
  if (find_call_stmt(*main_fn->body, "sniff")) return Structure::kCallback;
  if (find_call_stmt(*main_fn->body, "spawn")) {
    return Structure::kConsumerProducer;
  }
  return Structure::kCanonicalLoop;
}

Program normalize_callback(const Program& prog) {
  Program out = prog.clone();
  FuncDef* main_fn = out.find_func("main");
  std::size_t idx = 0;
  const Call* sniff = find_call_stmt(*main_fn->body, "sniff", &idx);
  if (sniff == nullptr) {
    throw TransformError(main_fn->loc, "callback transform: no sniff() in main");
  }
  if (sniff->args.size() != 2 || sniff->args[1]->kind != ExprKind::kVarRef) {
    throw TransformError(sniff->loc,
                         "sniff(port, callback) expects a function name");
  }
  const std::string cb = static_cast<const VarRef&>(*sniff->args[1]).name;
  if (out.find_func(cb) == nullptr) {
    throw TransformError(sniff->loc, "unknown callback '" + cb + "'");
  }
  const SourceLoc loc = sniff->loc;

  // while (true) { __pkt = recv(port); cb(__pkt); }
  auto loop = std::make_unique<While>(loc);
  loop->cond = std::make_unique<BoolLit>(true, loc);
  auto body = std::make_unique<Block>(loc);

  auto recv_assign = std::make_unique<Assign>(loc);
  recv_assign->target = Assign::Target::kVar;
  recv_assign->var = "__pkt";
  std::vector<ExprPtr> recv_args;
  recv_args.push_back(sniff->args[0]->clone());
  recv_assign->value = std::make_unique<Call>("recv", std::move(recv_args), loc);
  body->stmts.push_back(std::move(recv_assign));

  auto call_cb = std::make_unique<ExprStmt>(loc);
  std::vector<ExprPtr> cb_args;
  cb_args.push_back(std::make_unique<VarRef>("__pkt", loc));
  call_cb->expr = std::make_unique<Call>(cb, std::move(cb_args), loc);
  body->stmts.push_back(std::move(call_cb));

  loop->body = std::move(body);
  main_fn->body->stmts[idx] = std::move(loop);
  return out;
}

Program normalize_consumer_producer(const Program& prog) {
  Program out = prog.clone();
  FuncDef* main_fn = out.find_func("main");

  // Collect the spawned functions.
  std::vector<std::string> spawned;
  std::vector<std::size_t> spawn_idx;
  for (std::size_t i = 0; i < main_fn->body->stmts.size(); ++i) {
    const Stmt& s = *main_fn->body->stmts[i];
    if (s.kind != StmtKind::kExprStmt) continue;
    const Expr& e = *static_cast<const ExprStmt&>(s).expr;
    if (e.kind != ExprKind::kCall) continue;
    const auto& c = static_cast<const Call&>(e);
    if (c.callee != "spawn") continue;
    if (c.args.size() != 1 || c.args[0]->kind != ExprKind::kVarRef) {
      throw TransformError(c.loc, "spawn(fn) expects a function name");
    }
    spawned.push_back(static_cast<const VarRef&>(*c.args[0]).name);
    spawn_idx.push_back(i);
  }
  if (spawned.size() != 2) {
    throw TransformError(main_fn->loc,
                         "consumer-producer transform expects exactly two "
                         "spawned loops");
  }

  // Identify producer (contains recv) and consumer (contains pop).
  const FuncDef* producer = nullptr;
  const FuncDef* consumer = nullptr;
  for (const auto& name : spawned) {
    const FuncDef* f = out.find_func(name);
    if (f == nullptr) throw TransformError(main_fn->loc, "unknown spawned fn");
    Program probe;  // scan just this function
    probe.funcs.push_back(f->clone());
    if (uses_builtin(probe, "recv")) {
      producer = f;
    } else if (uses_builtin(probe, "pop")) {
      consumer = f;
    }
  }
  if (producer == nullptr || consumer == nullptr) {
    throw TransformError(main_fn->loc,
                         "could not identify producer (recv) and consumer "
                         "(pop) loops");
  }

  // From the producer: the recv port expression.
  const While* ploop = find_while_true(*producer->body);
  if (ploop == nullptr) {
    throw TransformError(producer->loc, "producer has no while(true) loop");
  }
  ExprPtr port;
  for (const auto& s : static_cast<const Block&>(*ploop->body).stmts) {
    if (s->kind != StmtKind::kAssign) continue;
    const auto& a = static_cast<const Assign&>(*s);
    if (a.target == Assign::Target::kVar &&
        a.value->kind == ExprKind::kCall &&
        static_cast<const Call&>(*a.value).callee == "recv") {
      const auto& rc = static_cast<const Call&>(*a.value);
      port = rc.args.empty() ? ExprPtr(std::make_unique<IntLit>(0, a.loc))
                             : rc.args[0]->clone();
    }
  }
  if (!port) throw TransformError(producer->loc, "producer loop has no recv");

  // From the consumer: the loop body, with `x = pop(q)` replaced by
  // `x = recv(port)`.
  const While* cloop = find_while_true(*consumer->body);
  if (cloop == nullptr) {
    throw TransformError(consumer->loc, "consumer has no while(true) loop");
  }
  auto new_body = std::make_unique<Block>(cloop->loc);
  bool replaced = false;
  for (const auto& s : static_cast<const Block&>(*cloop->body).stmts) {
    if (!replaced && s->kind == StmtKind::kAssign) {
      const auto& a = static_cast<const Assign&>(*s);
      if (a.target == Assign::Target::kVar &&
          a.value->kind == ExprKind::kCall &&
          static_cast<const Call&>(*a.value).callee == "pop") {
        auto recv_assign = std::make_unique<Assign>(a.loc);
        recv_assign->target = Assign::Target::kVar;
        recv_assign->var = a.var;
        std::vector<ExprPtr> args;
        args.push_back(port->clone());
        recv_assign->value =
            std::make_unique<Call>("recv", std::move(args), a.loc);
        new_body->stmts.push_back(std::move(recv_assign));
        replaced = true;
        continue;
      }
    }
    new_body->stmts.push_back(s->clone());
  }
  if (!replaced) {
    throw TransformError(consumer->loc, "consumer loop has no pop()");
  }

  auto loop = std::make_unique<While>(cloop->loc);
  loop->cond = std::make_unique<BoolLit>(true, cloop->loc);
  loop->body = std::move(new_body);

  // Rebuild main: statements except the spawns, plus the merged loop.
  auto new_main_body = std::make_unique<Block>(main_fn->body->loc);
  for (std::size_t i = 0; i < main_fn->body->stmts.size(); ++i) {
    if (i == spawn_idx[0] || i == spawn_idx[1]) continue;
    new_main_body->stmts.push_back(main_fn->body->stmts[i]->clone());
  }
  new_main_body->stmts.push_back(std::move(loop));
  main_fn->body = std::move(new_main_body);

  // Drop the producer/consumer definitions (now folded into main).
  const std::string pname = producer->name;
  const std::string cname = consumer->name;
  std::erase_if(out.funcs, [&](const FuncDef& f) {
    return f.name == pname || f.name == cname;
  });
  return out;
}

Program normalize(const Program& prog) {
  switch (detect_structure(prog)) {
    case Structure::kCanonicalLoop:
      return prog.clone();
    case Structure::kCallback:
      return normalize_callback(prog);
    case Structure::kConsumerProducer:
      return normalize_consumer_producer(prog);
    case Structure::kNestedLoop:
      return unfold_sockets(prog);
  }
  return prog.clone();
}

}  // namespace nfactor::transform
