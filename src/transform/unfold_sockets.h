// §3.2 "Hidden States": NFs written against the socket API (Fig. 3 —
// balance) keep per-connection state inside the OS. This transform
// unfolds listen()/accept()/connect()/recv()/send() into packet-level
// operations plus an explicit TCP state machine, and collapses the
// nested accept/fork/relay loops (Fig. 4d) into the canonical single
// packet loop (Fig. 5).
//
// Recognized shape (the stylization the paper also assumes):
//
//   def main() {
//     lfd = sock_listen(PORT);
//     while (true) {
//       cfd = sock_accept(lfd);
//       <backend-selection statements defining `server`>   // may use cfd
//       child = fork();
//       if (child == 0) {
//         sfd = sock_connect(server[0], server[1]);
//         while (true) { <relay via sock_recv/sock_send> }
//       }
//     }
//   }
//
// The generated program tracks the client connection through
// SYN -> SYN-ACK -> ACK (established) and relays data only on
// established connections, NATing between the client leg and the chosen
// backend leg — the packet-level behaviour of the proxying balancer.
#pragma once

#include "lang/ast.h"

namespace nfactor::transform {

struct UnfoldOptions {
  /// Address the unfolded NF answers on (socket code binds the host's
  /// address, which the program text does not name).
  std::uint32_t lb_ip = 0x03030303;  // 3.3.3.3
};

lang::Program unfold_sockets(const lang::Program& prog,
                             const UnfoldOptions& opts = {});

}  // namespace nfactor::transform
