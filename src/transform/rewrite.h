// Small AST rewriting utilities shared by the §3.2 structure
// normalizations.
#pragma once

#include <map>
#include <string>

#include "lang/ast.h"

namespace nfactor::transform {

/// Deep-clone an expression with variable renaming applied.
lang::ExprPtr rename_vars(const lang::Expr& e,
                          const std::map<std::string, std::string>& renames);

/// Deep-clone a statement with variable renaming applied (assignment
/// targets included).
lang::StmtPtr rename_vars(const lang::Stmt& s,
                          const std::map<std::string, std::string>& renames);

}  // namespace nfactor::transform
