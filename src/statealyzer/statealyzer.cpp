#include "statealyzer/statealyzer.h"

#include <sstream>

#include "obs/obs.h"

namespace nfactor::statealyzer {

namespace {

std::string base_of(const ir::Location& loc) {
  std::string base;
  return ir::split_field_loc(loc, &base, nullptr) ? base : loc;
}

}  // namespace

std::string to_string(VarCategory c) {
  switch (c) {
    case VarCategory::kPkt: return "pktVar";
    case VarCategory::kConfig: return "cfgVar";
    case VarCategory::kOis: return "oisVar";
    case VarCategory::kLog: return "logVar";
    case VarCategory::kLocal: return "local";
  }
  return "?";
}

Result analyze(const ir::Module& m, const analysis::Pdg& pdg) {
  OBS_SPAN_VAR(span, "statealyzer.analyze");
  const ir::Cfg& body = m.body;
  Result r;

  // ---- Packet-processing slice: backward from every send (Alg.1 l.1-4).
  std::set<int> send_nodes;
  for (const auto& n : body.nodes) {
    if (n->kind == ir::InstrKind::kSend) send_nodes.insert(n->id);
  }
  r.pkt_slice = pdg.backward_slice(send_nodes);

  // ---- Variable universe and body-level features.
  auto& feats = r.features;
  auto touch = [&](const std::string& v) -> VarFeatures& { return feats[v]; };

  for (const auto& g : m.globals) touch(g.name).persistent = true;
  for (const auto& v : m.persistent) touch(v).persistent = true;

  for (const auto& n : body.nodes) {
    for (const auto& u : n->uses()) touch(base_of(u)).top_level = true;
    for (const auto& d : n->defs()) {
      VarFeatures& f = touch(base_of(d));
      f.top_level = true;
      f.updateable = true;
    }
  }

  // ---- Packet variables: recv targets plus whole-packet aliases.
  std::set<std::string> pkt;
  for (const auto& n : body.nodes) {
    if (n->kind == ir::InstrKind::kRecv) pkt.insert(n->var);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& n : body.nodes) {
      if (n->kind != ir::InstrKind::kAssign) continue;
      if (n->value->kind != lang::ExprKind::kVarRef) continue;
      const auto& src = static_cast<const lang::VarRef&>(*n->value).name;
      if (pkt.count(src) && pkt.insert(n->var).second) grew = true;
    }
  }
  for (const auto& v : pkt) touch(v).is_packet = true;

  // ---- Output-impacting: appears in the packet slice.
  for (const int id : r.pkt_slice) {
    const ir::Instr& n = body.node(id);
    for (const auto& u : n.uses()) touch(base_of(u)).output_impacting = true;
    for (const auto& d : n.defs()) touch(base_of(d)).output_impacting = true;
  }

  // ---- Transitive closure over loop-carried state flow. The per-packet
  // slice sees one iteration, so a persistent var that only feeds an
  // output-impacting var *across* packets (st = f(m[...]) this packet,
  // `st` gates a send on the next) is invisible to it — yet the model's
  // match conditions will mention it, so the model must also maintain
  // it. Found by differential fuzzing (tests/fixtures/fuzz/
  // repro_transitive_ois.nf): a map written this packet and read into a
  // send-gating scalar was classified logVar, leaving the synthesized
  // model matching on state it never updated. Fix: anything in the
  // backward slice of an update of output-impacting persistent state is
  // output-impacting too, to a fixed point.
  bool closure_grew = true;
  while (closure_grew) {
    closure_grew = false;
    std::set<int> ois_updates;
    for (const auto& n : body.nodes) {
      for (const auto& d : n->defs()) {
        const VarFeatures& f = touch(base_of(d));
        if (f.persistent && f.updateable && f.output_impacting &&
            !f.is_packet) {
          ois_updates.insert(n->id);
          break;
        }
      }
    }
    for (const int id : pdg.backward_slice(ois_updates)) {
      const ir::Instr& n = body.node(id);
      for (const auto& u : n.uses()) {
        VarFeatures& f = touch(base_of(u));
        if (!f.output_impacting) {
          f.output_impacting = true;
          closure_grew = true;
        }
      }
      for (const auto& d : n.defs()) {
        VarFeatures& f = touch(base_of(d));
        if (!f.output_impacting) {
          f.output_impacting = true;
          closure_grew = true;
        }
      }
    }
  }

  // ---- Categorize (Table 1).
  for (auto& [name, f] : feats) {
    if (name.starts_with("__t")) {
      r.category[name] = VarCategory::kLocal;  // lowering temporaries
      continue;
    }
    if (f.is_packet) {
      r.category[name] = VarCategory::kPkt;
      r.pkt_vars.insert(name);
    } else if (f.persistent && f.top_level && !f.updateable) {
      r.category[name] = VarCategory::kConfig;
      r.cfg_vars.insert(name);
    } else if (f.persistent && f.top_level && f.updateable &&
               f.output_impacting) {
      r.category[name] = VarCategory::kOis;
      r.ois_vars.insert(name);
    } else if (f.persistent && f.top_level && f.updateable) {
      r.category[name] = VarCategory::kLog;
      r.log_vars.insert(name);
    } else {
      r.category[name] = VarCategory::kLocal;
    }
  }

  OBS_GAUGE("statealyzer.ois_vars", r.ois_vars.size());
  OBS_GAUGE("statealyzer.cfg_vars", r.cfg_vars.size());
  OBS_GAUGE("statealyzer.log_vars", r.log_vars.size());
  span.attr("ois", static_cast<std::int64_t>(r.ois_vars.size()));
  span.attr("cfg", static_cast<std::int64_t>(r.cfg_vars.size()));
  span.attr("log", static_cast<std::int64_t>(r.log_vars.size()));
  return r;
}

std::string Result::to_table() const {
  std::ostringstream os;
  auto row = [&](const char* label, const std::set<std::string>& vars) {
    os << label << ": ";
    bool first = true;
    for (const auto& v : vars) {
      if (!first) os << ", ";
      os << v;
      first = false;
    }
    os << '\n';
  };
  row("pktVar", pkt_vars);
  row("cfgVar", cfg_vars);
  row("oisVar", ois_vars);
  row("logVar", log_vars);
  return os.str();
}

}  // namespace nfactor::statealyzer
