// StateAlyzer-style variable categorization (paper §2.1 and Table 1).
// Features:
//   persistent       — lifetime longer than the packet loop (globals and
//                      init-section definitions);
//   top-level        — actually used during packet processing (appears in
//                      the per-packet body);
//   updateable       — assigned during packet processing;
//   output-impacting — appears in the backward slice of some packet
//                      output statement.
// Categories (Table 1):
//   pktVar — packet I/O function parameter/return value;
//   cfgVar — persistent, top-level, not updateable;
//   oisVar — persistent, top-level, updateable, output-impacting;
//   logVar — persistent, top-level, updateable, not output-impacting.
// NFactor's refinement over StateAlyzer: the analysis runs on the packet
// processing slice rather than the whole program (Algorithm 1, line 5).
#pragma once

#include <map>
#include <set>
#include <string>

#include "analysis/pdg.h"
#include "ir/ir.h"

namespace nfactor::statealyzer {

struct VarFeatures {
  bool persistent = false;
  bool top_level = false;
  bool updateable = false;
  bool output_impacting = false;
  bool is_packet = false;
};

enum class VarCategory : std::uint8_t {
  kPkt,     // the packet variable(s)
  kConfig,  // cfgVar
  kOis,     // output-impacting state
  kLog,     // log state
  kLocal,   // per-packet temporary
};

std::string to_string(VarCategory c);

struct Result {
  std::map<std::string, VarFeatures> features;
  std::map<std::string, VarCategory> category;

  std::set<std::string> pkt_vars;
  std::set<std::string> cfg_vars;
  std::set<std::string> ois_vars;
  std::set<std::string> log_vars;

  /// The packet-processing slice the classification ran on: union of
  /// backward slices from every send statement (Algorithm 1, lines 1-4).
  std::set<int> pkt_slice;

  bool is_ois(const std::string& v) const { return ois_vars.count(v) != 0; }
  bool is_cfg(const std::string& v) const { return cfg_vars.count(v) != 0; }
  bool is_pkt(const std::string& v) const { return pkt_vars.count(v) != 0; }

  /// Render the Table-1 style categorization.
  std::string to_table() const;
};

/// Run the categorization over a lowered module. `pdg` must be built on
/// `m.body`.
Result analyze(const ir::Module& m, const analysis::Pdg& pdg);

}  // namespace nfactor::statealyzer
