// NFactor's intermediate representation: a control-flow graph of simple
// statements whose operands are (builtin-only) expression trees. User
// function calls are inlined away by the lowerer, so every analysis —
// slicing, StateAlyzer, symbolic execution, the concrete runtime —
// operates on one flat per-packet CFG. This mirrors how the paper's
// toolchain (giri on LLVM IR) sees NF code after inlining.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/sema.h"

namespace nfactor::ir {

/// Storage "locations" used by dependence analysis. A location is either
/// a whole variable ("rr_idx", "f2b_nat") or a packet field
/// ("pkt.ip_src"). Containers are always whole-variable locations
/// (element stores are weak updates).
using Location = std::string;

inline Location field_loc(const std::string& var, const std::string& field) {
  return var + "." + field;
}

/// True when `loc` is a packet-field location; fills base/field.
bool split_field_loc(const Location& loc, std::string* base, std::string* field);

enum class InstrKind : std::uint8_t {
  kEntry,       // unique CFG entry (no-op)
  kExit,        // unique CFG exit (no-op)
  kAssign,      // var = value
  kFieldStore,  // var.field = value
  kIndexStore,  // var[index] = value       (weak update)
  kBranch,      // branch on value; succs = [true_target, false_target]
  kSend,        // send(value /*packet*/, aux /*port*/)
  kRecv,        // var = recv(aux /*port*/)
  kCall,        // effectful builtin: log(args...) / push(var, args) / var = pop(...)
};

std::string to_string(InstrKind k);

struct Instr {
  InstrKind kind = InstrKind::kEntry;
  int id = -1;
  lang::SourceLoc loc;

  std::string var;        // kAssign/kRecv target; kFieldStore/kIndexStore base;
                          // kCall: result target ("" if none)
  std::string field;      // kFieldStore
  lang::ExprPtr index;    // kIndexStore
  lang::ExprPtr value;    // kAssign value / kFieldStore / kIndexStore value /
                          // kBranch condition / kSend packet expr
  lang::ExprPtr aux;      // kSend port / kRecv port
  std::string callee;     // kCall builtin name
  std::vector<lang::ExprPtr> args;  // kCall arguments

  std::vector<int> succs;
  std::vector<int> preds;

  /// Locations read by this instruction (expression operands, weak-update
  /// self-uses, container reads).
  std::set<Location> uses() const;

  /// Locations written. kAssign/kRecv: the variable (strong).
  /// kFieldStore: var.field (strong). kIndexStore: var (weak).
  /// kCall push/pop: the container (weak) and pop's result var.
  std::set<Location> defs() const;

  /// Whether the write to `loc` is a strong (killing) definition.
  bool is_strong_def(const Location& loc) const;

  /// One-line rendering for dumps and golden tests.
  std::string to_string() const;
};

/// A single-entry single-exit CFG.
struct Cfg {
  std::vector<std::unique_ptr<Instr>> nodes;  // indexed by Instr::id
  int entry = -1;
  int exit = -1;

  Instr& node(int id) { return *nodes[static_cast<std::size_t>(id)]; }
  const Instr& node(int id) const { return *nodes[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return nodes.size(); }

  /// Statement nodes (everything except entry/exit).
  std::vector<int> real_nodes() const;

  /// Distinct source lines covered by the given node set — the paper's
  /// "LoC" metric for slices.
  int source_lines(const std::set<int>& ids) const;
  int source_lines() const;  // all real nodes

  std::string dump() const;
};

struct Global {
  std::string name;
  lang::ExprPtr init;
  lang::Type type = lang::Type::kUnknown;
};

/// A lowered NF: globals, a one-shot init CFG (statements before the
/// packet loop), and the per-packet body CFG anchored at `pkt = recv(...)`.
struct Module {
  std::string name;
  std::vector<Global> globals;
  Cfg init;
  Cfg body;
  std::string pkt_var;     // variable bound by the loop-head recv
  int recv_port_node = -1; // id of the kRecv node in body

  lang::SemaInfo sema;

  /// Persistent variables: lifetime longer than the packet loop —
  /// globals plus variables defined in the init section (StateAlyzer's
  /// "persistent" feature).
  std::set<std::string> persistent;

  const Global* find_global(const std::string& n) const {
    for (const auto& g : globals) {
      if (g.name == n) return &g;
    }
    return nullptr;
  }
};

/// Collect variable/field locations read by an expression tree.
/// A packet-typed VarRef used as a value (e.g. send(pkt, ...)) reads the
/// whole packet location plus nothing finer; pkt.f reads only "pkt.f".
void collect_uses(const lang::Expr& e, std::set<Location>& out);

/// All VarRef names in an expression (coarser than collect_uses).
void collect_var_names(const lang::Expr& e, std::set<std::string>& out);

}  // namespace nfactor::ir
