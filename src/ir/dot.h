// Graphviz export of the per-packet CFG, optionally highlighting a node
// subset (a slice) — the visualization counterpart of Figure 2b.
#pragma once

#include <set>
#include <string>

#include "ir/ir.h"

namespace nfactor::ir {

/// DOT rendering. Nodes in `highlight` are filled; branch edges carry
/// T/F labels.
std::string to_dot(const Cfg& cfg, const std::string& title = "cfg",
                   const std::set<int>& highlight = {});

}  // namespace nfactor::ir
