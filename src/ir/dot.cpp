#include "ir/dot.h"

#include <sstream>

namespace nfactor::ir {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Cfg& cfg, const std::string& title,
                   const std::set<int>& highlight) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(title) << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  for (const auto& n : cfg.nodes) {
    std::string label = n->to_string();
    if (label.size() > 70) label = label.substr(0, 67) + "...";
    os << "  n" << n->id << " [label=\"" << dot_escape(label) << '"';
    if (n->kind == InstrKind::kEntry || n->kind == InstrKind::kExit) {
      os << ", shape=oval";
    }
    if (highlight.count(n->id)) os << ", style=filled, fillcolor=lightyellow";
    os << "];\n";
  }
  for (const auto& n : cfg.nodes) {
    for (std::size_t s = 0; s < n->succs.size(); ++s) {
      if (n->succs[s] < 0) continue;
      os << "  n" << n->id << " -> n" << n->succs[s];
      if (n->kind == InstrKind::kBranch) {
        os << " [label=\"" << (s == 0 ? 'T' : 'F') << "\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace nfactor::ir
