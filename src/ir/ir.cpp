#include "ir/ir.h"

#include <sstream>

#include "lang/builtins.h"

namespace nfactor::ir {

using lang::Expr;
using lang::ExprKind;

bool split_field_loc(const Location& loc, std::string* base, std::string* field) {
  const auto dot = loc.find('.');
  if (dot == std::string::npos) return false;
  if (base) *base = loc.substr(0, dot);
  if (field) *field = loc.substr(dot + 1);
  return true;
}

void collect_uses(const Expr& e, std::set<Location>& out) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kBoolLit:
    case ExprKind::kStrLit:
    case ExprKind::kMapLit:
      return;
    case ExprKind::kVarRef:
      out.insert(static_cast<const lang::VarRef&>(e).name);
      return;
    case ExprKind::kUnary:
      collect_uses(*static_cast<const lang::Unary&>(e).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::Binary&>(e);
      collect_uses(*b.lhs, out);
      collect_uses(*b.rhs, out);
      return;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::Call&>(e);
      for (const auto& a : c.args) collect_uses(*a, out);
      return;
    }
    case ExprKind::kTupleLit: {
      for (const auto& x : static_cast<const lang::TupleLit&>(e).elems) {
        collect_uses(*x, out);
      }
      return;
    }
    case ExprKind::kListLit: {
      for (const auto& x : static_cast<const lang::ListLit&>(e).elems) {
        collect_uses(*x, out);
      }
      return;
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const lang::Index&>(e);
      collect_uses(*i.base, out);
      collect_uses(*i.index, out);
      return;
    }
    case ExprKind::kField: {
      const auto& f = static_cast<const lang::FieldRef&>(e);
      // pkt.f reads exactly the field location when the base is a plain
      // variable; otherwise fall back to whatever the base reads.
      if (f.base->kind == ExprKind::kVarRef) {
        out.insert(field_loc(static_cast<const lang::VarRef&>(*f.base).name,
                             f.field));
        return;
      }
      collect_uses(*f.base, out);
      return;
    }
  }
}

void collect_var_names(const Expr& e, std::set<std::string>& out) {
  std::set<Location> locs;
  collect_uses(e, locs);
  for (const auto& l : locs) {
    std::string base;
    if (split_field_loc(l, &base, nullptr)) {
      out.insert(base);
    } else {
      out.insert(l);
    }
  }
}

std::set<Location> Instr::uses() const {
  std::set<Location> out;
  switch (kind) {
    case InstrKind::kEntry:
    case InstrKind::kExit:
      break;
    case InstrKind::kAssign:
      collect_uses(*value, out);
      break;
    case InstrKind::kFieldStore:
      collect_uses(*value, out);
      break;
    case InstrKind::kIndexStore:
      collect_uses(*index, out);
      collect_uses(*value, out);
      out.insert(var);  // weak update reads the old container
      break;
    case InstrKind::kBranch:
      collect_uses(*value, out);
      break;
    case InstrKind::kSend:
      collect_uses(*value, out);
      collect_uses(*aux, out);
      break;
    case InstrKind::kRecv:
      if (aux) collect_uses(*aux, out);
      break;
    case InstrKind::kCall:
      for (const auto& a : args) collect_uses(*a, out);
      if (callee == "pop") {
        // arg already collected; pop also reads (and writes) the container
      }
      break;
  }
  return out;
}

std::set<Location> Instr::defs() const {
  std::set<Location> out;
  switch (kind) {
    case InstrKind::kAssign:
    case InstrKind::kRecv:
      out.insert(var);
      break;
    case InstrKind::kFieldStore:
      out.insert(field_loc(var, field));
      break;
    case InstrKind::kIndexStore:
      out.insert(var);
      break;
    case InstrKind::kCall:
      if (callee == "push" || callee == "pop") {
        // first argument is the container, mutated in place
        if (!args.empty() && args[0]->kind == ExprKind::kVarRef) {
          out.insert(static_cast<const lang::VarRef&>(*args[0]).name);
        }
      }
      if (!var.empty()) out.insert(var);
      break;
    default:
      break;
  }
  return out;
}

bool Instr::is_strong_def(const Location& loc) const {
  switch (kind) {
    case InstrKind::kAssign:
    case InstrKind::kRecv:
      return loc == var;
    case InstrKind::kFieldStore:
      return loc == field_loc(var, field);
    default:
      return false;  // container updates and call effects are weak
  }
}

std::string to_string(InstrKind k) {
  switch (k) {
    case InstrKind::kEntry: return "entry";
    case InstrKind::kExit: return "exit";
    case InstrKind::kAssign: return "assign";
    case InstrKind::kFieldStore: return "fstore";
    case InstrKind::kIndexStore: return "istore";
    case InstrKind::kBranch: return "branch";
    case InstrKind::kSend: return "send";
    case InstrKind::kRecv: return "recv";
    case InstrKind::kCall: return "call";
  }
  return "?";
}

std::string Instr::to_string() const {
  std::ostringstream os;
  os << '%' << id << " [" << ir::to_string(kind) << "] ";
  switch (kind) {
    case InstrKind::kEntry:
    case InstrKind::kExit:
      break;
    case InstrKind::kAssign:
      os << var << " = " << lang::to_source(*value);
      break;
    case InstrKind::kFieldStore:
      os << var << '.' << field << " = " << lang::to_source(*value);
      break;
    case InstrKind::kIndexStore:
      os << var << '[' << lang::to_source(*index) << "] = "
         << lang::to_source(*value);
      break;
    case InstrKind::kBranch:
      os << "if " << lang::to_source(*value) << " -> %" << succs[0] << " / %"
         << succs[1];
      break;
    case InstrKind::kSend:
      os << "send(" << lang::to_source(*value) << ", " << lang::to_source(*aux)
         << ')';
      break;
    case InstrKind::kRecv:
      os << var << " = recv(" << (aux ? lang::to_source(*aux) : "?") << ')';
      break;
    case InstrKind::kCall: {
      if (!var.empty()) os << var << " = ";
      os << callee << '(';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << lang::to_source(*args[i]);
      }
      os << ')';
      break;
    }
  }
  if (kind != InstrKind::kBranch && !succs.empty()) {
    os << "  -> ";
    for (std::size_t i = 0; i < succs.size(); ++i) {
      if (i) os << ", ";
      os << '%' << succs[i];
    }
  }
  return os.str();
}

std::vector<int> Cfg::real_nodes() const {
  std::vector<int> out;
  for (const auto& n : nodes) {
    if (n->kind != InstrKind::kEntry && n->kind != InstrKind::kExit) {
      out.push_back(n->id);
    }
  }
  return out;
}

int Cfg::source_lines(const std::set<int>& ids) const {
  std::set<int> lines;
  for (int id : ids) {
    const Instr& n = node(id);
    if (n.kind == InstrKind::kEntry || n.kind == InstrKind::kExit) continue;
    if (n.loc.line > 0) lines.insert(n.loc.line);
  }
  return static_cast<int>(lines.size());
}

int Cfg::source_lines() const {
  std::set<int> all;
  for (int id : real_nodes()) all.insert(id);
  return source_lines(all);
}

std::string Cfg::dump() const {
  std::ostringstream os;
  for (const auto& n : nodes) os << n->to_string() << '\n';
  return os.str();
}

}  // namespace nfactor::ir
