#pragma once

#include "ir/ir.h"
#include "lang/ast.h"
#include "lang/diagnostics.h"

namespace nfactor::ir {

class LowerError : public lang::FrontendError {
  using FrontendError::FrontendError;
};

/// Lower a semantically-checked program into a Module. Requirements
/// (established by transform::normalize for non-canonical sources):
///   - a `main()` exists;
///   - main's body is: zero or more init statements, then exactly one
///     `while (true) { pkt = recv(PORT); ... }` packet loop;
///   - no socket/control builtins remain (they hide state, §3.2).
/// User function calls are inlined (sema has already rejected recursion).
/// Runs lang::analyze internally.
Module lower(lang::Program prog);

}  // namespace nfactor::ir
