#include "ir/lower.h"

#include <functional>

#include "lang/builtins.h"
#include "lang/sema.h"

namespace nfactor::ir {

namespace {

using lang::Assign;
using lang::Block;
using lang::Call;
using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::SourceLoc;
using lang::Stmt;
using lang::StmtKind;

/// A pending edge: nodes_[node].succs[slot] will be patched later.
struct Patch {
  int node;
  std::size_t slot;
};

struct LoopCtx {
  int continue_target = -1;             // used when continues == nullptr
  std::vector<Patch>* continues = nullptr;  // for-loops: jump to increment
  std::vector<Patch>* breaks = nullptr;
};

/// Per-inline-instance context: local-variable renaming plus where
/// `return` goes.
struct InlineCtx {
  std::map<std::string, std::string> rename;
  std::string ret_var;            // "" for the outermost (packet body) level
  std::vector<Patch>* returns;    // return jumps collect here
};

class Builder {
 public:
  explicit Builder(const lang::Program& prog, const lang::SemaInfo& sema)
      : prog_(prog), sema_(sema) {}

  Cfg take_cfg() { return std::move(cfg_); }

  void begin() {
    cfg_ = Cfg{};
    auto entry = std::make_unique<Instr>();
    entry->kind = InstrKind::kEntry;
    entry->id = 0;
    entry->succs.assign(1, -1);  // fall-through slot patched by first emit
    cfg_.nodes.push_back(std::move(entry));
    cfg_.entry = 0;
    frontier_ = {pending_slot(0)};
  }

  /// Seal the CFG: create the exit node, patch the frontier and any
  /// outstanding return patches to it.
  void finish(std::vector<Patch>* returns) {
    const int exit_id = new_node(InstrKind::kExit, {});
    if (returns != nullptr) {
      for (const Patch& p : *returns) set_succ(p, exit_id);
    }
    cfg_.exit = exit_id;
  }

  void lower_stmts(const Block& b, InlineCtx& ictx) {
    for (const auto& s : b.stmts) lower_stmt(*s, ictx);
  }

  void lower_stmt(const Stmt& s, InlineCtx& ictx) {
    if (frontier_.empty()) return;  // unreachable code after return/break
    switch (s.kind) {
      case StmtKind::kBlock:
        lower_stmts(static_cast<const Block&>(s), ictx);
        return;
      case StmtKind::kAssign:
        lower_assign(static_cast<const Assign&>(s), ictx);
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const lang::If&>(s);
        const ExprPtr cond = lower_expr(*i.cond, ictx);
        const int b = emit_branch(cond->clone(), i.loc);
        std::vector<Patch> joins;

        frontier_ = {Patch{b, 0}};
        lower_stmt(*i.then_body, ictx);
        joins.insert(joins.end(), frontier_.begin(), frontier_.end());

        frontier_ = {Patch{b, 1}};
        if (i.else_body) lower_stmt(*i.else_body, ictx);
        joins.insert(joins.end(), frontier_.begin(), frontier_.end());

        frontier_ = std::move(joins);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const lang::While&>(s);
        lower_loop(*w.cond, nullptr, nullptr, *w.body, w.loc, ictx);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const lang::For&>(s);
        // i = begin; while (i < end) { body; i = i + 1; }
        const std::string iv = renamed(f.var, ictx);
        emit_assign(iv, lower_expr(*f.begin, ictx), f.loc);
        auto cond = std::make_unique<lang::Binary>(
            lang::BinOp::kLt, std::make_unique<lang::VarRef>(iv, f.loc),
            lower_expr(*f.end, ictx), f.loc);
        auto incr = std::make_unique<lang::Binary>(
            lang::BinOp::kAdd, std::make_unique<lang::VarRef>(iv, f.loc),
            std::make_unique<lang::IntLit>(1, f.loc), f.loc);
        lower_loop(*cond, &iv, incr.get(), *f.body, f.loc, ictx);
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const lang::Return&>(s);
        if (r.value && !ictx.ret_var.empty()) {
          emit_assign(ictx.ret_var, lower_expr(*r.value, ictx), r.loc);
        } else if (r.value) {
          // value discarded at the outermost level, but still evaluate for
          // effects
          lower_expr(*r.value, ictx);
        }
        for (const Patch& p : frontier_) ictx.returns->push_back(p);
        frontier_.clear();
        return;
      }
      case StmtKind::kBreak:
        require(!loops_.empty(), s.loc, "'break' outside loop");
        for (const Patch& p : frontier_) loops_.back().breaks->push_back(p);
        frontier_.clear();
        return;
      case StmtKind::kContinue: {
        require(!loops_.empty(), s.loc, "'continue' outside loop");
        LoopCtx& lc = loops_.back();
        for (const Patch& p : frontier_) {
          if (lc.continues != nullptr) {
            lc.continues->push_back(p);
          } else {
            set_succ(p, lc.continue_target);
          }
        }
        frontier_.clear();
        return;
      }
      case StmtKind::kExprStmt: {
        const auto& e = static_cast<const lang::ExprStmt&>(s);
        lower_expr_stmt(*e.expr, ictx);
        return;
      }
    }
  }

  /// Lower the canonical packet loop body (statements of the while(true)
  /// block). The first statement must be `pkt = recv(port)`.
  void lower_packet_body(const Block& body, InlineCtx& ictx, Module& m) {
    require(!body.stmts.empty(), body.loc, "empty packet loop");
    const Stmt& first = *body.stmts.front();
    require(first.kind == StmtKind::kAssign, first.loc,
            "packet loop must start with 'pkt = recv(port)'");
    const auto& a = static_cast<const Assign&>(first);
    require(a.target == Assign::Target::kVar &&
                a.value->kind == ExprKind::kCall &&
                static_cast<const Call&>(*a.value).callee == "recv",
            first.loc, "packet loop must start with 'pkt = recv(port)'");
    const auto& recv_call = static_cast<const Call&>(*a.value);

    auto n = std::make_unique<Instr>();
    n->kind = InstrKind::kRecv;
    n->loc = first.loc;
    n->var = renamed(a.var, ictx);
    n->aux = recv_call.args.empty() ? nullptr
                                    : lower_expr(*recv_call.args[0], ictx);
    m.pkt_var = n->var;
    m.recv_port_node = emit(std::move(n));

    for (std::size_t i = 1; i < body.stmts.size(); ++i) {
      lower_stmt(*body.stmts[i], ictx);
    }
  }

 private:
  [[noreturn]] void fail(SourceLoc loc, const std::string& msg) const {
    throw LowerError(loc, msg);
  }

  void require(bool ok, SourceLoc loc, const std::string& msg) const {
    if (!ok) fail(loc, msg);
  }

  static Patch pending_slot(int node_id) { return Patch{node_id, 0}; }

  int new_node(InstrKind k, SourceLoc loc) {
    auto n = std::make_unique<Instr>();
    n->kind = k;
    n->loc = loc;
    return emit(std::move(n));
  }

  /// Append a node, patch the frontier into it, and make its fall-through
  /// edge the new frontier (except for branches, handled by callers).
  int emit(std::unique_ptr<Instr> n) {
    n->id = static_cast<int>(cfg_.nodes.size());
    const int id = n->id;
    const bool is_branch = n->kind == InstrKind::kBranch;
    n->succs.assign(is_branch ? 2 : 1, -1);
    if (n->kind == InstrKind::kExit) n->succs.clear();
    cfg_.nodes.push_back(std::move(n));
    for (const Patch& p : frontier_) set_succ(p, id);
    frontier_.clear();
    if (!is_branch && cfg_.nodes.back()->kind != InstrKind::kExit) {
      frontier_ = {Patch{id, 0}};
    }
    return id;
  }

  void set_succ(const Patch& p, int target) {
    Instr& n = cfg_.node(p.node);
    n.succs[p.slot] = target;
    cfg_.node(target).preds.push_back(p.node);
  }

  int emit_branch(ExprPtr cond, SourceLoc loc) {
    auto n = std::make_unique<Instr>();
    n->kind = InstrKind::kBranch;
    n->loc = loc;
    n->value = std::move(cond);
    return emit(std::move(n));
  }

  void emit_assign(const std::string& var, ExprPtr value, SourceLoc loc) {
    auto n = std::make_unique<Instr>();
    n->kind = InstrKind::kAssign;
    n->loc = loc;
    n->var = var;
    n->value = std::move(value);
    emit(std::move(n));
  }

  void lower_loop(const Expr& cond, const std::string* for_var,
                  const Expr* for_incr, const Stmt& body, SourceLoc loc,
                  InlineCtx& ictx) {
    // The condition may itself emit instructions (inlined calls); the back
    // edge must re-enter at the first of them.
    const int cond_start_hint = static_cast<int>(cfg_.nodes.size());
    const ExprPtr c = lower_expr(cond, ictx);
    const int b = emit_branch(c->clone(), loc);
    const int loop_head = cond_start_hint < b ? cond_start_hint : b;

    std::vector<Patch> breaks;

    // For-loops continue at the increment, while-loops at the condition.
    frontier_ = {Patch{b, 0}};
    if (for_var != nullptr) {
      std::vector<Patch> continues;
      loops_.push_back({-1, &continues, &breaks});
      lower_stmt(body, ictx);
      loops_.pop_back();

      frontier_.insert(frontier_.end(), continues.begin(), continues.end());
      if (!frontier_.empty()) {
        auto n = std::make_unique<Instr>();
        n->kind = InstrKind::kAssign;
        n->loc = loc;
        n->var = *for_var;
        n->value = for_incr->clone();
        emit(std::move(n));
        for (const Patch& p : frontier_) set_succ(p, loop_head);
        frontier_.clear();
      }
    } else {
      loops_.push_back({loop_head, nullptr, &breaks});
      lower_stmt(body, ictx);
      loops_.pop_back();
      for (const Patch& p : frontier_) set_succ(p, loop_head);
      frontier_.clear();
    }

    frontier_ = {Patch{b, 1}};
    frontier_.insert(frontier_.end(), breaks.begin(), breaks.end());
  }

  std::string renamed(const std::string& name, const InlineCtx& ictx) const {
    const auto it = ictx.rename.find(name);
    return it == ictx.rename.end() ? name : it->second;
  }

  /// Rewrite an expression: rename locals, inline user calls (emitting
  /// their bodies), reject socket/control builtins, and lift effectful
  /// builtins used in expression position.
  ExprPtr lower_expr(const Expr& e, InlineCtx& ictx) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kBoolLit:
      case ExprKind::kStrLit:
      case ExprKind::kMapLit:
        return e.clone();
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const lang::VarRef&>(e);
        auto out = std::make_unique<lang::VarRef>(renamed(v.name, ictx), v.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const lang::Unary&>(e);
        auto out = std::make_unique<lang::Unary>(
            u.op, lower_expr(*u.operand, ictx), u.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const lang::Binary&>(e);
        auto lhs = lower_expr(*b.lhs, ictx);
        auto rhs = lower_expr(*b.rhs, ictx);
        auto out = std::make_unique<lang::Binary>(b.op, std::move(lhs),
                                                  std::move(rhs), b.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kTupleLit: {
        const auto& t = static_cast<const lang::TupleLit&>(e);
        std::vector<ExprPtr> elems;
        elems.reserve(t.elems.size());
        for (const auto& x : t.elems) elems.push_back(lower_expr(*x, ictx));
        auto out = std::make_unique<lang::TupleLit>(std::move(elems), t.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kListLit: {
        const auto& l = static_cast<const lang::ListLit&>(e);
        std::vector<ExprPtr> elems;
        elems.reserve(l.elems.size());
        for (const auto& x : l.elems) elems.push_back(lower_expr(*x, ictx));
        auto out = std::make_unique<lang::ListLit>(std::move(elems), l.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kIndex: {
        const auto& i = static_cast<const lang::Index&>(e);
        auto out = std::make_unique<lang::Index>(lower_expr(*i.base, ictx),
                                                 lower_expr(*i.index, ictx),
                                                 i.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kField: {
        const auto& f = static_cast<const lang::FieldRef&>(e);
        auto out = std::make_unique<lang::FieldRef>(lower_expr(*f.base, ictx),
                                                    f.field, f.loc);
        out->type = e.type;
        return out;
      }
      case ExprKind::kCall:
        return lower_call(static_cast<const Call&>(e), ictx);
    }
    fail(e.loc, "unhandled expression kind");
  }

  ExprPtr lower_call(const Call& c, InlineCtx& ictx) {
    if (const auto* b = lang::find_builtin(c.callee)) {
      switch (b->role) {
        case lang::BuiltinRole::kSocket:
          fail(c.loc, "socket builtin '" + c.callee +
                          "' must be unfolded before lowering (§3.2); run "
                          "transform::unfold_sockets");
        case lang::BuiltinRole::kControl:
          fail(c.loc, "control builtin '" + c.callee +
                          "' must be normalized before lowering; run "
                          "transform::normalize");
        case lang::BuiltinRole::kPktInput:
          fail(c.loc, "recv() is only allowed at the packet loop head");
        case lang::BuiltinRole::kEffect: {
          // pop(q) in expression position: lift to a kCall with a temp.
          const std::string tmp = fresh_temp();
          auto n = std::make_unique<Instr>();
          n->kind = InstrKind::kCall;
          n->loc = c.loc;
          n->var = tmp;
          n->callee = c.callee;
          for (const auto& a : c.args) n->args.push_back(lower_expr(*a, ictx));
          emit(std::move(n));
          return std::make_unique<lang::VarRef>(tmp, c.loc);
        }
        default: {
          std::vector<ExprPtr> args;
          args.reserve(c.args.size());
          for (const auto& a : c.args) args.push_back(lower_expr(*a, ictx));
          auto out = std::make_unique<Call>(c.callee, std::move(args), c.loc);
          out->type = c.type;
          return out;
        }
      }
    }

    // User call: inline.
    const lang::FuncDef* callee = prog_.find_func(c.callee);
    require(callee != nullptr, c.loc, "unknown function '" + c.callee + "'");
    const int instance = ++inline_counter_;

    InlineCtx sub;
    const std::string prefix = c.callee + "$" + std::to_string(instance) + "$";
    for (const auto& [local, ty] : sema_.funcs.at(c.callee).locals) {
      (void)ty;
      sub.rename[local] = prefix + local;
    }
    for (std::size_t i = 0; i < callee->params.size(); ++i) {
      ExprPtr arg = i < c.args.size() ? lower_expr(*c.args[i], ictx)
                                      : ExprPtr(std::make_unique<lang::IntLit>(0, c.loc));
      emit_assign(sub.rename.at(callee->params[i]), std::move(arg), c.loc);
    }
    sub.ret_var = prefix + "$ret";
    std::vector<Patch> returns;
    sub.returns = &returns;

    lower_stmts(*callee->body, sub);

    // Join: fall-through and returns converge on the continuation.
    frontier_.insert(frontier_.end(), returns.begin(), returns.end());
    return std::make_unique<lang::VarRef>(sub.ret_var, c.loc);
  }

  void lower_expr_stmt(const Expr& e, InlineCtx& ictx) {
    if (e.kind == ExprKind::kCall) {
      const auto& c = static_cast<const Call&>(e);
      if (const auto* b = lang::find_builtin(c.callee)) {
        if (b->role == lang::BuiltinRole::kPktOutput) {
          require(c.args.size() == 2, c.loc, "send(pkt, port) expects 2 args");
          auto n = std::make_unique<Instr>();
          n->kind = InstrKind::kSend;
          n->loc = c.loc;
          n->value = lower_expr(*c.args[0], ictx);
          n->aux = lower_expr(*c.args[1], ictx);
          emit(std::move(n));
          return;
        }
        if (b->role == lang::BuiltinRole::kLog ||
            b->role == lang::BuiltinRole::kEffect) {
          auto n = std::make_unique<Instr>();
          n->kind = InstrKind::kCall;
          n->loc = c.loc;
          n->callee = c.callee;
          for (const auto& a : c.args) n->args.push_back(lower_expr(*a, ictx));
          emit(std::move(n));
          return;
        }
      }
    }
    // Generic expression statement: evaluate for effects (inlines user
    // calls); a pure residue is dropped.
    lower_expr(e, ictx);
  }

  void lower_assign(const Assign& a, InlineCtx& ictx) {
    switch (a.target) {
      case Assign::Target::kVar: {
        // `x = pop(q)` gets a dedicated kCall node with result var.
        if (a.value->kind == ExprKind::kCall) {
          const auto& c = static_cast<const Call&>(*a.value);
          const auto* b = lang::find_builtin(c.callee);
          if (b != nullptr && b->role == lang::BuiltinRole::kEffect) {
            auto n = std::make_unique<Instr>();
            n->kind = InstrKind::kCall;
            n->loc = a.loc;
            n->var = renamed(a.var, ictx);
            n->callee = c.callee;
            for (const auto& arg : c.args) {
              n->args.push_back(lower_expr(*arg, ictx));
            }
            emit(std::move(n));
            return;
          }
        }
        ExprPtr v = lower_expr(*a.value, ictx);
        auto n = std::make_unique<Instr>();
        n->kind = InstrKind::kAssign;
        n->loc = a.loc;
        n->var = renamed(a.var, ictx);
        n->value = std::move(v);
        emit(std::move(n));
        return;
      }
      case Assign::Target::kField: {
        auto n = std::make_unique<Instr>();
        n->kind = InstrKind::kFieldStore;
        n->loc = a.loc;
        n->var = renamed(a.var, ictx);
        n->field = a.field;
        n->value = lower_expr(*a.value, ictx);
        emit(std::move(n));
        return;
      }
      case Assign::Target::kIndex: {
        auto n = std::make_unique<Instr>();
        n->kind = InstrKind::kIndexStore;
        n->loc = a.loc;
        n->var = renamed(a.var, ictx);
        n->index = lower_expr(*a.index, ictx);
        n->value = lower_expr(*a.value, ictx);
        emit(std::move(n));
        return;
      }
    }
  }

  std::string fresh_temp() { return "__t" + std::to_string(++temp_counter_); }

  const lang::Program& prog_;
  const lang::SemaInfo& sema_;
  Cfg cfg_;
  std::vector<Patch> frontier_;
  std::vector<LoopCtx> loops_;
  int temp_counter_ = 0;
  int inline_counter_ = 0;
};

bool is_while_true(const Stmt& s) {
  if (s.kind != StmtKind::kWhile) return false;
  const auto& w = static_cast<const lang::While&>(s);
  return w.cond->kind == ExprKind::kBoolLit &&
         static_cast<const lang::BoolLit&>(*w.cond).value;
}

}  // namespace

Module lower(lang::Program prog) {
  Module m;
  m.name = prog.unit_name;
  m.sema = lang::analyze(prog);

  const lang::FuncDef* main_fn = prog.find_func("main");
  if (main_fn == nullptr) {
    throw LowerError({0, 0}, "program has no main() function");
  }

  // Split main's body into init statements and the packet loop.
  const lang::While* loop = nullptr;
  std::vector<const Stmt*> init_stmts;
  for (const auto& s : main_fn->body->stmts) {
    if (is_while_true(*s)) {
      if (loop != nullptr) {
        throw LowerError(s->loc, "multiple packet loops in main()");
      }
      loop = static_cast<const lang::While*>(s.get());
      continue;
    }
    if (loop != nullptr) {
      throw LowerError(s->loc, "statements after the packet loop are unreachable");
    }
    init_stmts.push_back(s.get());
  }
  if (loop == nullptr) {
    throw LowerError(main_fn->loc,
                     "main() has no 'while (true)' packet loop; run "
                     "transform::normalize on callback/consumer-producer/"
                     "nested-loop structured programs first");
  }

  // Globals.
  for (const auto& g : prog.globals) {
    m.globals.push_back({g.name, g.init->clone(), m.sema.globals.at(g.name)});
    m.persistent.insert(g.name);
  }

  // Init CFG. main's locals keep their unqualified names here so the body
  // can reference them; anything defined pre-loop is persistent.
  {
    Builder b(prog, m.sema);
    b.begin();
    InlineCtx ictx;
    std::vector<Patch> returns;
    ictx.returns = &returns;
    for (const Stmt* s : init_stmts) b.lower_stmt(*s, ictx);
    b.finish(&returns);
    m.init = b.take_cfg();
    for (const auto& n : m.init.nodes) {
      for (const auto& d : n->defs()) {
        std::string base;
        if (!split_field_loc(d, &base, nullptr)) m.persistent.insert(d);
      }
    }
  }

  // Per-packet body CFG.
  {
    Builder b(prog, m.sema);
    b.begin();
    InlineCtx ictx;
    std::vector<Patch> returns;
    ictx.returns = &returns;
    b.lower_packet_body(static_cast<const Block&>(*loop->body), ictx, m);
    b.finish(&returns);
    m.body = b.take_cfg();
  }

  return m;
}

}  // namespace nfactor::ir
