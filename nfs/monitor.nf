# flow-rate-limiter with a consumer-producer structure (Fig. 4c):
# a read loop enqueues packets, a processing loop pops and decides.
var LIMIT = 3;
var OUT_PORT = 1;
var queue = [];
# Output-impacting state
var flow_count = {};
# Log state
var total = 0;
var limited = 0;

def read_loop() {
  while (true) {
    p = recv(0);
    push(queue, p);
  }
}

def proc_loop() {
  while (true) {
    p = pop(queue);
    total = total + 1;
    k = (p.ip_src, p.ip_dst, p.ip_proto);
    if (k in flow_count) {
      c = flow_count[k];
    } else {
      c = 0;
    }
    if (c >= LIMIT) {
      limited = limited + 1;
      return;
    }
    flow_count[k] = c + 1;
    send(p, OUT_PORT);
  }
}

def main() {
  spawn(read_loop);
  spawn(proc_loop);
}
