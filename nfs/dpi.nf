# dpi: payload signature inspection; matched packets are mirrored to
# an analysis port AND still forwarded (Fig. 4a structure).
var WATCH_PORT = 80;
var MIRROR_PORT = 9;
var OUT_PORT = 1;
# Log state
var inspected = 0;
var matched = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_proto != 6) {
      send(pkt, OUT_PORT);
      return;
    }
    if (pkt.dport == WATCH_PORT || pkt.sport == WATCH_PORT) {
      inspected = inspected + 1;
      if (payload_contains(pkt, "exploit") ||
          payload_contains(pkt, "/etc/shadow")) {
        matched = matched + 1;
        send(pkt, MIRROR_PORT);
        send(pkt, OUT_PORT);
        return;
      }
    }
    send(pkt, OUT_PORT);
  }
}
