# synflood: SYN-flood mitigation. Tracks half-open handshakes per
# source; sources above SYN_LIMIT have further SYNs dropped; a completed
# handshake (ACK) forgives one half-open entry (Fig. 4a structure).
var OUT_PORT = 1;
var SYN_LIMIT = 3;
# Output-impacting state
var half_open = {};
# Log state
var flood_drops = 0;
var forgiven = 0;

def main() {
  while (true) {
    pkt = recv(0);
    if (pkt.ip_proto != 6) {
      send(pkt, OUT_PORT);
      return;
    }
    f = pkt.tcp_flags;
    if ((f & 2) != 0 && (f & 16) == 0) {
      # bare SYN: count it against the source
      if (pkt.ip_src in half_open) {
        c = half_open[pkt.ip_src];
      } else {
        c = 0;
      }
      if (c >= SYN_LIMIT) {
        flood_drops = flood_drops + 1;
        return;
      }
      half_open[pkt.ip_src] = c + 1;
      send(pkt, OUT_PORT);
      return;
    }
    if ((f & 16) != 0) {
      # ACK: a handshake completed; forgive one half-open slot
      if (pkt.ip_src in half_open) {
        c2 = half_open[pkt.ip_src];
        if (c2 > 0) {
          half_open[pkt.ip_src] = c2 - 1;
          forgiven = forgiven + 1;
        }
      }
    }
    send(pkt, OUT_PORT);
  }
}
