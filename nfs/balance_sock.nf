# balance 3.5-style TCP proxy load balancer (paper Figure 3).
# Nested-loop socket structure (Fig. 4d): hidden TCP state lives in the
# OS until transform::unfold_sockets makes it explicit.
var MODE_RR = 1;
var mode = 1;
var BAL_PORT = 80;
var servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
var idx = 0;
# Log state
var conn_stat = 0;
var busy_stat = 0;
var wrap_stat = 0;

def main() {
  lfd = sock_listen(BAL_PORT);
  while (true) {
    cfd = sock_accept(lfd);
    if (mode == MODE_RR) {
      server = servers[idx];
      idx = (idx + 1) % len(servers);
    } else {
      # hash the client to a backend server
      server = servers[hash(cfd) % len(servers)];
    }
    conn_stat = conn_stat + 1;
    if (conn_stat > 1000) {
      # failure handling: connection table pressure accounting
      busy_stat = busy_stat + 1;
    }
    if (idx == 0) {
      wrap_stat = wrap_stat + 1;
    }
    child = fork();
    if (child == 0) {
      sfd = sock_connect(server[0], server[1]);
      while (true) {
        buf = sock_recv(cfd);
        sock_send(sfd, buf);
        buf2 = sock_recv(sfd);
        sock_send(cfd, buf2);
      }
    }
  }
}
