# Layer-4 load balancer (paper Figure 1), callback structure (Fig. 4b).
# Constants
var ROUND_ROBIN = 1;
var HASH_MODE = 2;
# Configurations
var mode = 1;
var LB_IFACE = 0;
var LB_IP = 3.3.3.3;
var LB_PORT = 80;
var servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
# Output-impacting states
var f2b_nat = {};
var b2f_nat = {};
var rr_idx = 0;
var cur_port = 10000;
# Log states
var pass_stat = 0;
var drop_stat = 0;

def pkt_callback(pkt) {
  si = pkt.ip_src;
  di = pkt.ip_dst;
  sp = pkt.sport;
  dp = pkt.dport;
  if (dp == LB_PORT) {
    # packet from client to server
    cs_ftpl = (si, sp, di, dp);
    sc_ftpl = (di, dp, si, sp);
    if (!(cs_ftpl in f2b_nat)) {
      # new connection
      if (mode == ROUND_ROBIN) {
        server = servers[rr_idx];
        rr_idx = (rr_idx + 1) % len(servers);
      } else {
        # hash to a backend server
        server = servers[hash(si) % len(servers)];
      }
      n_port = cur_port;
      cur_port = cur_port + 1;
      cs_btpl = (LB_IP, n_port, server[0], server[1]);
      sc_btpl = (server[0], server[1], LB_IP, n_port);
      f2b_nat[cs_ftpl] = cs_btpl;
      b2f_nat[sc_btpl] = sc_ftpl;
      nat_tpl = cs_btpl;
    } else {
      # existing connection
      nat_tpl = f2b_nat[cs_ftpl];
    }
  } else {
    # packet from server to client
    sc_btpl = (si, sp, di, dp);
    if (sc_btpl in b2f_nat) {
      nat_tpl = b2f_nat[sc_btpl];
    } else {
      # no initial outbound traffic is allowed
      drop_stat = drop_stat + 1;
      return;
    }
  }
  pass_stat = pass_stat + 1;
  pkt.ip_src = nat_tpl[0];
  pkt.sport = nat_tpl[1];
  pkt.ip_dst = nat_tpl[2];
  pkt.dport = nat_tpl[3];
  send(pkt, LB_IFACE);
}

def main() {
  sniff(0, pkt_callback);
}
