# l2-switch: MAC learning switch with flooding (Fig. 4a structure).
var FLOOD_PORT = 255;
# Forwarding state: MAC -> switch port
var mac_table = {};
# Log state
var learned = 0;
var flooded = 0;

def main() {
  while (true) {
    pkt = recv(0);
    # learn the source MAC's port
    mac_table[pkt.eth_src] = pkt.in_port;
    learned = learned + 1;
    if (pkt.eth_dst in mac_table) {
      out = mac_table[pkt.eth_dst];
      if (out != pkt.in_port) {
        send(pkt, out);
      }
      return;
    }
    flooded = flooded + 1;
    send(pkt, FLOOD_PORT);
  }
}
