# snort-lite: inline signature IDS/IPS, canonical loop structure (Fig. 4a).
# -------- configuration --------
var IFACE_IN = 0;
var IFACE_OUT = 1;
var INLINE_DROP = 1;
# rule tuple: (proto, src_ip, src_port, dst_ip, dst_port, flags_mask)
# field value 0 means wildcard.
var rules = [
  (6, 0, 0, 0, 23, 0),
  (6, 0, 0, 0, 8080, 2),
  (17, 0, 0, 0, 69, 0),
];

# -------- log / statistics state (forwarding-irrelevant) --------
var pkt_count = 0;
var tcp_count = 0;
var udp_count = 0;
var other_count = 0;
var syn_count = 0;
var fin_count = 0;
var rst_count = 0;
var big_count = 0;
var tiny_count = 0;
var lowttl_count = 0;
var frag_count = 0;
var http_count = 0;
var telnet_count = 0;
var alert_count = 0;
var drop_count = 0;
var byte_count = 0;
var decode_fail = 0;

def decode_ok(pkt) {
  # failure handling: malformed packets are not forwarded
  if (pkt.eth_type != 0x0800) {
    return false;
  }
  if (pkt.ip_ttl == 0) {
    return false;
  }
  return true;
}

def preprocess(pkt) {
  # per-protocol accounting (log-only; pruned by slicing)
  pkt_count = pkt_count + 1;
  byte_count = byte_count + pkt.len;
  if (pkt.ip_proto == 6) {
    tcp_count = tcp_count + 1;
  } else {
    if (pkt.ip_proto == 17) {
      udp_count = udp_count + 1;
    } else {
      other_count = other_count + 1;
    }
  }
  if ((pkt.tcp_flags & 2) != 0) {
    syn_count = syn_count + 1;
  }
  if ((pkt.tcp_flags & 1) != 0) {
    fin_count = fin_count + 1;
  }
  if ((pkt.tcp_flags & 4) != 0) {
    rst_count = rst_count + 1;
  }
  if (pkt.len > 512) {
    big_count = big_count + 1;
  }
  if (pkt.len < 16) {
    tiny_count = tiny_count + 1;
  }
  if (pkt.ip_ttl < 5) {
    lowttl_count = lowttl_count + 1;
  }
  if (pkt.ip_id != 0) {
    frag_count = frag_count + 1;
  }
  if (pkt.dport == 80) {
    http_count = http_count + 1;
  }
  if (pkt.dport == 23) {
    telnet_count = telnet_count + 1;
  }
}

def match_rule(pkt, r) {
  # header match with 0-wildcards; compound condition keeps the branch
  # factor at one per rule
  if ((r[0] == 0 || r[0] == pkt.ip_proto) &&
      (r[1] == 0 || r[1] == pkt.ip_src) &&
      (r[2] == 0 || r[2] == pkt.sport) &&
      (r[3] == 0 || r[3] == pkt.ip_dst) &&
      (r[4] == 0 || r[4] == pkt.dport) &&
      (r[5] == 0 || (pkt.tcp_flags & r[5]) != 0)) {
    return true;
  }
  return false;
}

def detect(pkt) {
  for i in 0..len(rules) {
    if (match_rule(pkt, rules[i])) {
      return i;
    }
  }
  # content rules (compiled in, like snort's content: options)
  if (pkt.dport == 21 && payload_contains(pkt, "USER root")) {
    return 100;
  }
  if (pkt.dport == 80 && payload_contains(pkt, "/etc/passwd")) {
    return 101;
  }
  return 0 - 1;
}

def log_alert(pkt, rule_id) {
  alert_count = alert_count + 1;
  # alert record formatting (pruned by slicing)
  sev = 1;
  if (rule_id >= 100) {
    sev = 2;
  }
  src_hi = pkt.ip_src >> 16;
  src_lo = pkt.ip_src & 0xFFFF;
  log("ALERT", rule_id, sev, src_hi, src_lo, pkt.sport, pkt.dport);
}

def main() {
  while (true) {
    pkt = recv(IFACE_IN);
    if (!decode_ok(pkt)) {
      decode_fail = decode_fail + 1;
      return;
    }
    preprocess(pkt);
    rule_id = detect(pkt);
    if (rule_id >= 0) {
      log_alert(pkt, rule_id);
      if (INLINE_DROP == 1) {
        drop_count = drop_count + 1;
        return;
      }
    }
    send(pkt, IFACE_OUT);
  }
}
