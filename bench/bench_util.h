// Shared helpers for the paper-reproduction benchmarks: each bench
// binary prints its paper-shaped table first (the reproduction artifact)
// and then runs google-benchmark timings for the operations behind it.
// After the timing run the obs metrics registry is emitted alongside —
// as JSON to $NFACTOR_METRICS_OUT (or --metrics-out FILE) when set, and
// always as a one-line digest on stderr — so every BENCH_*.json gains
// the per-stage breakdown (solver query histogram, fork/prune counters,
// per-stage wall-time gauges) of the work it measured.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "lang/parser.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"
#include "obs/json.h"
#include "obs/obs.h"

// Build provenance stamped by bench/CMakeLists.txt; fall back gracefully
// when a bench TU is compiled outside that scope.
#ifndef NFACTOR_GIT_SHA
#define NFACTOR_GIT_SHA "unknown"
#endif
#ifndef NFACTOR_BUILD_TYPE
#define NFACTOR_BUILD_TYPE "unknown"
#endif

namespace nfactor::benchutil {

inline pipeline::PipelineResult run_nf(const std::string& name,
                                       const pipeline::PipelineOptions& opts = {}) {
  const auto& e = nfs::find(name);
  return pipeline::run_source(e.source, name, opts);
}

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Run metadata stamped into every metrics JSON under the "meta" key:
/// git SHA and build type (configure-time), the NFACTOR_OBS and
/// NFACTOR_SYMEX_INTERN switches, and the default SE worker width.
/// check_perf_baseline.py prints this on a gate failure so a regression
/// report always names the build that produced the numbers.
inline std::string meta_json() {
  const char* intern_env = std::getenv("NFACTOR_SYMEX_INTERN");
  const bool intern_on = intern_env == nullptr || std::strcmp(intern_env, "0") != 0;
  std::ostringstream os;
  os << "{\"git_sha\":\"" << obs::json_escape(NFACTOR_GIT_SHA)
     << "\",\"build_type\":\"" << obs::json_escape(NFACTOR_BUILD_TYPE)
     << "\",\"obs\":" << (NFACTOR_OBS_ENABLED ? "true" : "false")
     << ",\"symex_intern\":" << (intern_on ? "true" : "false")
     << ",\"jobs\":" << std::thread::hardware_concurrency() << "}";
  return os.str();
}

/// Write the default registry's JSON to `path`, with run metadata
/// spliced in as the leading "meta" key; returns success.
inline bool write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  std::string doc = obs::default_registry().to_json();
  if (!doc.empty() && doc.front() == '{') {
    doc.insert(1, "\"meta\":" + meta_json() + ",");
  }
  out << doc << "\n";
  return static_cast<bool>(out);
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 where procfs is unavailable. The kernel's
/// high-water mark covers the whole run, which is exactly what a memory
/// before/after comparison wants.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::uint64_t kib = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %llu",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      return kib * 1024;
    }
  }
  return 0;
}

/// Print the report section, then hand over to google-benchmark.
/// Usage: int main(argc, argv) { print_report(); return bench_main(argc, argv); }
inline int bench_main(int argc, char** argv) {
  // Our own flag, consumed before google-benchmark sees the args.
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (metrics_out.empty()) {
    if (const char* env = std::getenv("NFACTOR_METRICS_OUT")) {
      metrics_out = env;
    }
  }

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  // Memory high-water mark of the whole bench process, so memory wins
  // (e.g. expression interning) show up next to the timings.
  if (const std::uint64_t rss = peak_rss_bytes(); rss > 0) {
    OBS_GAUGE("process.peak_rss_bytes", rss);
  }

  if (!metrics_out.empty() && !write_metrics_json(metrics_out)) {
    std::fprintf(stderr, "bench: cannot write metrics to %s\n",
                 metrics_out.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", obs::default_registry().summary().c_str());
  return 0;
}

}  // namespace nfactor::benchutil
