// Shared helpers for the paper-reproduction benchmarks: each bench
// binary prints its paper-shaped table first (the reproduction artifact)
// and then runs google-benchmark timings for the operations behind it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "lang/parser.h"
#include "nfactor/pipeline.h"
#include "nfs/corpus.h"

namespace nfactor::benchutil {

inline pipeline::PipelineResult run_nf(const std::string& name,
                                       const pipeline::PipelineOptions& opts = {}) {
  const auto& e = nfs::find(name);
  return pipeline::run_source(e.source, name, opts);
}

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Print the report section, then hand over to google-benchmark.
/// Usage: int main(argc, argv) { print_report(); return bench_main(argc, argv); }
inline int bench_main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace nfactor::benchutil
