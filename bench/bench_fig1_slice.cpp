// Reproduces paper Figure 1: the load-balancer source with the
// *dynamic* program slice highlighted — the statements that really led
// to relaying the first packet of a new flow. The runtime records a
// trace with dynamic def-use links; the slice is computed backward from
// the send event (Agrawal–Horgan dynamic slicing).
#include <cstdio>
#include <set>
#include <sstream>

#include "analysis/dynamic_slice.h"
#include "bench/bench_util.h"
#include "runtime/interp.h"

namespace {

using namespace nfactor;

netsim::Packet first_flow_packet() {
  netsim::Packet p;
  p.ip_src = netsim::ipv4("10.0.0.7");
  p.ip_dst = netsim::ipv4("3.3.3.3");
  p.sport = 4242;
  p.dport = 80;
  p.tcp_flags = netsim::kSyn;
  return p;
}

void report() {
  std::printf("Figure 1: load balancer code with the dynamic slice of the\n");
  std::printf("first-packet relay highlighted ('>' marks slice lines)\n");
  benchutil::rule('=');

  const auto r = benchutil::run_nf("lb");
  runtime::Interpreter interp(*r.module);
  interp.enable_trace(true);
  const runtime::Output out = interp.process(first_flow_packet());
  if (out.sent.empty()) {
    std::printf("unexpected: LB dropped the first flow packet\n");
    return;
  }

  // Criterion: the send event in the trace.
  const analysis::Trace& trace = interp.trace();
  int criterion = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (r.module->body.node(trace[i].node).kind == ir::InstrKind::kSend) {
      criterion = static_cast<int>(i);
    }
  }
  const std::set<int> nodes =
      analysis::dynamic_slice_nodes(trace, *r.pdg, criterion);
  std::set<int> lines;
  for (const int n : nodes) {
    const int line = r.module->body.node(n).loc.line;
    if (line > 0) lines.insert(line);
  }

  const auto& src = nfs::find("lb").source;
  std::istringstream is{std::string(src)};
  std::string line;
  int ln = 0;
  int highlighted = 0;
  int stmts = 0;
  while (std::getline(is, line)) {
    ++ln;
    const bool hl = lines.count(ln) != 0;
    highlighted += hl ? 1 : 0;
    if (!line.empty() && line[0] != '#') ++stmts;
    std::printf("%c %3d | %s\n", hl ? '>' : ' ', ln, line.c_str());
  }
  benchutil::rule();
  std::printf("dynamic slice: %d of %d non-comment lines (trace events: %zu, "
              "slice nodes: %zu)\n\n",
              highlighted, stmts, trace.size(), nodes.size());
}

void BM_DynamicSlice(benchmark::State& state) {
  const auto r = benchutil::run_nf("lb");
  runtime::Interpreter interp(*r.module);
  interp.enable_trace(true);
  interp.process(first_flow_packet());
  const analysis::Trace& trace = interp.trace();
  int criterion = static_cast<int>(trace.size()) - 1;
  for (auto _ : state) {
    auto nodes = analysis::dynamic_slice_nodes(trace, *r.pdg, criterion);
    benchmark::DoNotOptimize(nodes.size());
  }
}
BENCHMARK(BM_DynamicSlice);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
