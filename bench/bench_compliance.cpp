// Reproduces the paper's §4 "Testing" application (BUZZ-style): generate
// compliance test traffic *from the model* — including priming packets
// that install state before the probe — and replay it against the
// original NF, checking the behaviour the model promises.
#include <cstdio>

#include "bench/bench_util.h"
#include "verify/compliance.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("§4 Testing: model-driven compliance test generation\n");
  benchutil::rule('=');
  std::printf("%-12s | %7s | %6s | %6s | %9s | %11s\n", "NF", "entries",
              "passed", "failed", "uncovered", "config-skip");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    const auto r = benchutil::run_nf(std::string(e.name));
    const auto rep = verify::run_compliance(*r.module, r.model);
    std::printf("%-12s | %7zu | %6d | %6d | %9d | %11d\n",
                std::string(e.name).c_str(), r.model.entries.size(),
                rep.passed, rep.failed, rep.uncovered, rep.config_skipped);
    for (const auto& tc : rep.cases) {
      if (tc.status == verify::CaseStatus::kFailed) {
        std::printf("    FAILED entry %d: %s\n", tc.entry_index,
                    tc.note.c_str());
      }
    }
  }
  benchutil::rule();
  std::printf("passed = generated sequence matched the entry's promised\n"
              "behaviour on the original NF; uncovered = constraint shapes\n"
              "the generator cannot invert yet (multi-step state setup\n"
              "beyond one priming packet).\n\n");
}

void BM_ComplianceLb(benchmark::State& state) {
  const auto r = benchutil::run_nf("lb");
  for (auto _ : state) {
    auto rep = verify::run_compliance(*r.module, r.model);
    benchmark::DoNotOptimize(rep.passed);
  }
}
BENCHMARK(BM_ComplianceLb)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
