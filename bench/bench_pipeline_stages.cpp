// Reproduces paper Figure 2: the NFactor pipeline stages on the LB —
// (b) packet slice and state slice sizes, (c) the execution paths found
// in the union slice, (d) the resulting model tables.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "model/model.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Figure 2: NFactor overview — pipeline stages on the LB\n");
  benchutil::rule('=');
  const auto r = benchutil::run_nf("lb");

  std::printf("(a) input: %d CFG statements over %d source lines\n",
              static_cast<int>(r.module->body.real_nodes().size()),
              r.loc_orig);
  std::printf("(b) slices: packet slice %zu nodes, state slice %zu nodes, "
              "union %zu nodes (%d source lines)\n",
              r.pkt_slice.size(), r.state_slice.size(), r.union_slice.size(),
              r.loc_slice);
  std::printf("(c) execution paths in the union slice: %zu\n",
              r.slice_paths.size());
  for (std::size_t i = 0; i < r.slice_paths.size(); ++i) {
    const auto& p = r.slice_paths[i];
    std::printf("    path %zu: %zu conditions, %zu sends, %zu nodes%s\n", i,
                p.constraints.size(), p.sends.size(), p.nodes.size(),
                p.truncated ? " (truncated)" : "");
  }
  std::printf("(d) model:\n%s\n", model::to_table(r.model).c_str());
  std::printf("stage times: lower %.2fms, slicing %.2fms, SE(slice) %.2fms\n\n",
              r.times.lower_ms, r.times.slicing_ms, r.times.se_slice_ms);
}

// Stage-time section on the two SE-heaviest corpus NFs. The se_ms gauges
// emitted here (`stages.<nf>.se_ms`) are what the CI perf-smoke step
// compares against bench/perf_baseline.json, so interner regressions that
// only show at snort_lite/dpi scale fail the build instead of landing.
void report_stage_times() {
  std::printf("Stage times on the SE-heaviest NFs (orig-program SE on)\n");
  benchutil::rule('=');
  for (const char* name : {"snort_lite", "dpi"}) {
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    const auto r = benchutil::run_nf(name, opts);
    const double se_ms = r.times.se_slice_ms + r.times.se_orig_ms;
    std::printf(
        "%-12s lower %7.2fms  slicing %7.2fms  se_slice %7.2fms  "
        "se_orig %7.2fms  model %7.2fms  total %7.2fms\n",
        name, r.times.lower_ms, r.times.slicing_ms, r.times.se_slice_ms,
        r.times.se_orig_ms, r.times.model_ms, r.times.total_ms);
    obs::default_registry().gauge_set(std::string("stages.") + name + ".se_ms",
                                      se_ms);
    obs::default_registry().gauge_set(
        std::string("stages.") + name + ".total_ms", r.times.total_ms);
  }
  std::printf("\n");
}

void BM_FullPipelineLb(benchmark::State& state) {
  const auto& e = nfs::find("lb");
  auto prog = lang::parse(e.source, "lb");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.model.entries.size());
  }
}
BENCHMARK(BM_FullPipelineLb)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  report_stage_times();
  return nfactor::benchutil::bench_main(argc, argv);
}
