// Reproduces paper Table 2: "NFactor on Snort and Balance" —
//   LoC (orig / slice / path), slicing time, number of execution paths
//   (orig / slice), symbolic-execution time (orig / slice)
// for snort_lite and balance. The absolute numbers differ from the
// paper's (their substrate was LLVM giri + KLEE over the real snort 1.0
// and balance 3.5 C sources; ours is the NF-DSL re-implementations), but
// the claims the table supports are reproduced:
//   * the packet/state slice is a small fraction of the original code;
//   * a single execution path is smaller still;
//   * the slice has orders of magnitude fewer symbolic paths than the
//     original (which hits the exploration cap, as snort hit ">1000");
//   * SE on the slice is far cheaper than on the original;
//   * snort (header-heavy logic) benefits more than balance.
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace nfactor;

struct Row {
  std::string name;
  int loc_orig, loc_slice, loc_path;
  double slicing_ms;
  std::size_t ep_orig;
  bool ep_orig_capped;
  std::size_t ep_slice;
  double se_orig_ms;
  bool se_orig_timeout;
  double se_slice_ms;
};

Row measure(const std::string& name) {
  pipeline::PipelineOptions opts;
  opts.run_orig_se = true;
  opts.se_orig.max_paths = 1024;       // paper reports snort as ">1000"
  opts.se_orig.timeout_ms = 30000.0;
  const auto r = benchutil::run_nf(name, opts);

  Row row;
  row.name = name;
  row.loc_orig = r.loc_orig;
  row.loc_slice = r.loc_slice;
  row.loc_path = r.loc_path;
  row.slicing_ms = r.times.slicing_ms;
  row.ep_orig = r.orig_paths.size();
  row.ep_orig_capped = r.orig_stats.hit_path_cap;
  row.ep_slice = r.slice_paths.size();
  row.se_orig_ms = r.times.se_orig_ms;
  row.se_orig_timeout = r.orig_stats.timed_out;
  row.se_slice_ms = r.times.se_slice_ms;
  return row;
}

void report() {
  std::printf("Table 2: NFactor on snort_lite and balance\n");
  benchutil::rule('=');
  std::printf("%-12s | %21s | %8s | %13s | %17s\n", "", "LoC", "Slicing",
              "# of EP", "SE time");
  std::printf("%-12s | %6s %6s %6s | %8s | %6s %6s | %8s %8s\n", "NF", "orig",
              "slice", "path", "time", "orig", "slice", "orig", "slice");
  benchutil::rule();
  for (const auto& nf : {"snort_lite", "balance"}) {
    const Row r = measure(nf);
    char ep_orig[32];
    std::snprintf(ep_orig, sizeof(ep_orig), "%s%zu",
                  r.ep_orig_capped ? ">" : "", r.ep_orig);
    char se_orig[32];
    std::snprintf(se_orig, sizeof(se_orig), "%s%.1fms",
                  (r.ep_orig_capped || r.se_orig_timeout) ? ">" : "",
                  r.se_orig_ms);
    std::printf("%-12s | %6d %6d %6d | %6.1fms | %6s %6zu | %8s %6.1fms\n",
                r.name.c_str(), r.loc_orig, r.loc_slice, r.loc_path,
                r.slicing_ms, ep_orig, r.ep_slice, se_orig, r.se_slice_ms);
  }
  benchutil::rule();
  std::printf(
      "LoC: distinct source lines in the per-packet CFG; EP: symbolic\n"
      "execution paths; 'orig' runs the whole program, 'slice' the packet +\n"
      "state slice. '>' marks a hit exploration cap (paper: snort >1000 EP,\n"
      ">1hr SE on the original).\n\n");
}

void BM_SlicingSnort(benchmark::State& state) {
  const auto& e = nfs::find("snort_lite");
  auto prog = lang::parse(e.source, "snort_lite");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.union_slice.size());
  }
}
BENCHMARK(BM_SlicingSnort)->Unit(benchmark::kMillisecond);

void BM_SlicingBalance(benchmark::State& state) {
  const auto& e = nfs::find("balance");
  auto prog = lang::parse(e.source, "balance");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.union_slice.size());
  }
}
BENCHMARK(BM_SlicingBalance)->Unit(benchmark::kMillisecond);

void BM_SymexOrigSnort(benchmark::State& state) {
  const auto& e = nfs::find("snort_lite");
  pipeline::PipelineOptions opts;
  auto r = pipeline::run(lang::parse(e.source, "snort_lite"), opts);
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions eo;
  eo.max_paths = 1024;
  for (auto _ : state) {
    symex::ExecStats stats;
    auto paths = se.run(eo, &stats);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_SymexOrigSnort)->Unit(benchmark::kMillisecond);

void BM_SymexSliceSnort(benchmark::State& state) {
  const auto& e = nfs::find("snort_lite");
  auto r = pipeline::run(lang::parse(e.source, "snort_lite"));
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions eo;
  eo.filter = &r.union_slice;
  for (auto _ : state) {
    symex::ExecStats stats;
    auto paths = se.run(eo, &stats);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_SymexSliceSnort)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
