// Reproduces paper Figure 6: "NFactor output for balance" — the
// extracted stateful match/action model of the balance load balancer,
// one table per configuration (mode = RR with the round-robin index as
// output-impacting state; mode = HASH with no index state).
#include <cstdio>

#include "bench/bench_util.h"
#include "model/model.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Figure 6: NFactor output for balance\n");
  benchutil::rule('=');
  const auto r = benchutil::run_nf("balance");
  std::printf("%s\n", model::to_table(r.model).c_str());

  std::printf("StateAlyzer categorization used by the extraction:\n%s\n",
              r.cats.to_table().c_str());
  std::printf(
      "Check against the paper: the RR table matches on the idx state and\n"
      "advances it circularly ((idx+1) %% N); the HASH table picks\n"
      "servers[hash(flow) %% N] with no index state update.\n\n");
}

void BM_ExtractBalanceModel(benchmark::State& state) {
  const auto& e = nfs::find("balance");
  auto prog = lang::parse(e.source, "balance");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.model.entries.size());
  }
}
BENCHMARK(BM_ExtractBalanceModel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
