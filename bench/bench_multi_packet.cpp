// Multi-packet symbolic exploration (the machinery behind BUZZ-style
// stateful test generation, §4 "Testing"): number of feasible K-packet
// sequences per NF and the cost of exploring them. Cross-packet
// dependencies — round-2 constraints mentioning round-1's packet — are
// exactly the state-setup relationships a test generator must honor.
#include <cstdio>

#include "bench/bench_util.h"
#include "verify/multi_packet.h"

namespace {

using namespace nfactor;

bool mentions_prefix(const symex::SymRef& e, const std::string& prefix) {
  std::map<std::string, symex::VarClass> vars;
  symex::collect_vars(e, vars);
  for (const auto& [name, cls] : vars) {
    (void)cls;
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void report() {
  std::printf("Multi-packet symbolic sequences (state threaded across K "
              "symbolic packets)\n");
  benchutil::rule('=');
  std::printf("%-12s | %6s | %6s | %6s | %18s\n", "NF", "K=1", "K=2", "K=3",
              "cross-packet deps");
  benchutil::rule();
  for (const char* nf : {"firewall", "nat", "lb", "monitor", "synflood",
                         "heavy_hitter"}) {
    const auto r = benchutil::run_nf(nf);
    std::size_t counts[3] = {0, 0, 0};
    std::size_t cross = 0;
    for (int k = 1; k <= 3; ++k) {
      verify::SequenceOptions opts;
      opts.packets = k;
      opts.max_sequences = 4096;
      const auto seqs = verify::explore_sequences(*r.module, r.cats, opts);
      counts[k - 1] = seqs.size();
      if (k == 2) {
        for (const auto& sp : seqs) {
          for (const auto& c : sp.rounds[1].constraints) {
            if (mentions_prefix(c, "pkt1.") && mentions_prefix(c, "pkt2.")) {
              ++cross;
              break;
            }
          }
        }
      }
    }
    std::printf("%-12s | %6zu | %6zu | %6zu | %9zu of K=2\n", nf, counts[0],
                counts[1], counts[2], cross);
  }
  benchutil::rule();
  std::printf("cross-packet deps: K=2 sequences whose second-round behaviour\n"
              "depends on the first packet's headers (installed state) — the\n"
              "sequences a stateful test generator must realize as ordered\n"
              "packet pairs.\n\n");
}

void BM_TwoPacketFirewall(benchmark::State& state) {
  const auto r = benchutil::run_nf("firewall");
  verify::SequenceOptions opts;
  opts.packets = 2;
  for (auto _ : state) {
    auto seqs = verify::explore_sequences(*r.module, r.cats, opts);
    benchmark::DoNotOptimize(seqs.size());
  }
}
BENCHMARK(BM_TwoPacketFirewall)->Unit(benchmark::kMillisecond);

void BM_ThreePacketNat(benchmark::State& state) {
  const auto r = benchutil::run_nf("nat");
  verify::SequenceOptions opts;
  opts.packets = 3;
  for (auto _ : state) {
    auto seqs = verify::explore_sequences(*r.module, r.cats, opts);
    benchmark::DoNotOptimize(seqs.size());
  }
}
BENCHMARK(BM_ThreePacketNat)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
