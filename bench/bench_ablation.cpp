// Ablations of the design choices DESIGN.md calls out:
//  (a) feasibility pruning — run the executor with the solver disabled
//      (fork both sides of every branch) and count the spurious paths it
//      would otherwise enumerate;
//  (b) loop-bound sensitivity — vary max_loop_iters and watch path
//      counts/truncations on the rule-looping snort_lite;
//  (c) slicing — SE cost with and without the packet/state slice
//      (the Table-2 comparison, summarized per NF here).
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Ablation (a): feasibility solver on/off (slice SE)\n");
  benchutil::rule('=');
  std::printf("%-12s | %12s | %14s | %s\n", "NF", "with solver",
              "without solver", "spurious paths");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    const auto r = benchutil::run_nf(std::string(e.name));
    symex::SymbolicExecutor se(*r.module, r.cats);

    symex::ExecOptions with;
    with.filter = &r.union_slice;
    symex::ExecStats ws;
    const auto paths_with = se.run(with, &ws);

    symex::ExecOptions without = with;
    without.assume_all_feasible = true;
    symex::ExecStats wos;
    const auto paths_without = se.run(without, &wos);

    std::printf("%-12s | %12zu | %14zu | +%zu (%.1fx)\n",
                std::string(e.name).c_str(), paths_with.size(),
                paths_without.size(), paths_without.size() - paths_with.size(),
                static_cast<double>(paths_without.size()) /
                    static_cast<double>(paths_with.size()));
  }
  benchutil::rule();
  std::printf(
      "(slice conditions in this corpus are mutually independent, so the\n"
      " solver prunes nothing there — correlated conditions live in the\n"
      " code slicing removes. On the *original* programs it matters:)\n\n");
  std::printf("%-22s | %12s | %14s\n", "original program", "with solver",
              "without solver");
  benchutil::rule();
  for (const char* name : {"snort_lite", "lb"}) {
    const auto r = benchutil::run_nf(name);
    symex::SymbolicExecutor se(*r.module, r.cats);
    symex::ExecOptions with;
    with.max_paths = 1u << 15;
    symex::ExecStats ws;
    const auto paths_with = se.run(with, &ws);
    symex::ExecOptions without = with;
    without.assume_all_feasible = true;
    symex::ExecStats wos;
    const auto paths_without = se.run(without, &wos);
    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%s%zu", ws.hit_path_cap ? ">" : "",
                  paths_with.size());
    std::snprintf(b, sizeof(b), "%s%zu", wos.hit_path_cap ? ">" : "",
                  paths_without.size());
    std::printf("%-22s | %12s | %14s\n", name, a, b);
  }
  benchutil::rule();

  std::printf("\nAblation (b): loop bound sensitivity (snort_lite, orig SE)\n");
  benchutil::rule('=');
  std::printf("%10s | %10s | %10s | %10s\n", "max_loop", "paths",
              "truncated", "time");
  benchutil::rule();
  const auto snort = benchutil::run_nf("snort_lite");
  symex::SymbolicExecutor se(*snort.module, snort.cats);
  for (const int bound : {1, 2, 4, 8, 16}) {
    symex::ExecOptions opts;
    opts.max_loop_iters = bound;
    opts.max_paths = 8192;
    symex::ExecStats stats;
    const auto paths = se.run(opts, &stats);
    std::printf("%10d | %10zu | %10zu | %8.1fms\n", bound, paths.size(),
                stats.paths_truncated, stats.wall_ms);
  }
  benchutil::rule();

  std::printf("\nAblation (c): slicing on/off — SE paths per corpus NF\n");
  benchutil::rule('=');
  std::printf("%-12s | %12s | %12s\n", "NF", "whole prog", "slice");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 2048;
    const auto r = benchutil::run_nf(std::string(e.name), opts);
    char orig[32];
    std::snprintf(orig, sizeof(orig), "%s%zu",
                  r.orig_stats.hit_path_cap ? ">" : "", r.orig_paths.size());
    std::printf("%-12s | %12s | %12zu\n", std::string(e.name).c_str(), orig,
                r.slice_paths.size());
  }
  benchutil::rule();
  std::printf("\n");
}

void BM_SliceSeWithSolver(benchmark::State& state) {
  const auto r = benchutil::run_nf("snort_lite");
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions opts;
  opts.filter = &r.union_slice;
  for (auto _ : state) {
    symex::ExecStats stats;
    benchmark::DoNotOptimize(se.run(opts, &stats).size());
  }
}
BENCHMARK(BM_SliceSeWithSolver)->Unit(benchmark::kMillisecond);

void BM_SliceSeWithoutSolver(benchmark::State& state) {
  const auto r = benchutil::run_nf("snort_lite");
  symex::SymbolicExecutor se(*r.module, r.cats);
  symex::ExecOptions opts;
  opts.filter = &r.union_slice;
  opts.assume_all_feasible = true;
  for (auto _ : state) {
    symex::ExecStats stats;
    benchmark::DoNotOptimize(se.run(opts, &stats).size());
  }
}
BENCHMARK(BM_SliceSeWithoutSolver)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
