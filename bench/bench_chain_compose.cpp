// Reproduces the paper's §4 "Service Policy Composition" application:
// composing the policies {FW, IDS} and {LB} — should the result be
// {FW, IDS, LB} or {FW, LB, IDS}? PGA-style I/O-space analysis of the
// NFactor models answers it: the IDS matches on client addresses/ports
// that the LB rewrites, so the IDS must precede the LB.
#include <cstdio>

#include "bench/bench_util.h"
#include "verify/chain.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("§4 Service Policy Composition: {FW, IDS} + {LB}\n");
  benchutil::rule('=');

  const auto fw = benchutil::run_nf("firewall");
  const auto ids = benchutil::run_nf("snort_lite");
  const auto lb = benchutil::run_nf("lb");
  const auto nat = benchutil::run_nf("nat");

  std::printf("I/O spaces from the models:\n");
  for (const auto& [name, m] : std::vector<std::pair<std::string, const model::Model*>>{
           {"fw", &fw.model}, {"ids", &ids.model}, {"lb", &lb.model},
           {"nat", &nat.model}}) {
    const auto io = verify::io_space(*m);
    std::printf("  %-4s matches{", name.c_str());
    for (const auto& f : io.fields_matched) std::printf(" %s", f.c_str());
    std::printf(" } rewrites{");
    for (const auto& f : io.fields_rewritten) std::printf(" %s", f.c_str());
    std::printf(" }\n");
  }

  const auto advice = verify::advise_order(
      {{"lb", &lb.model}, {"fw", &fw.model}, {"ids", &ids.model}});
  std::printf("\nordering constraints (matcher before rewriter):\n");
  for (const auto& c : advice.constraints) {
    std::printf("  %s before %s  (both touch %s)\n", c.before.c_str(),
                c.after.c_str(), c.field.c_str());
  }
  std::printf("\ncomposed order: ");
  for (std::size_t i = 0; i < advice.order.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", advice.order[i].c_str());
  }
  std::printf("%s\n", advice.has_cycle ? "  (cycle: no conflict-free order)" : "");
  std::printf("\n(paper's example: {FW, IDS, LB} is correct — the IDS must see\n"
              "pre-translation addresses)\n\n");
}

void BM_AdviseOrder(benchmark::State& state) {
  const auto fw = benchutil::run_nf("firewall");
  const auto ids = benchutil::run_nf("snort_lite");
  const auto lb = benchutil::run_nf("lb");
  for (auto _ : state) {
    auto advice = verify::advise_order(
        {{"lb", &lb.model}, {"fw", &fw.model}, {"ids", &ids.model}});
    benchmark::DoNotOptimize(advice.order.size());
  }
}
BENCHMARK(BM_AdviseOrder);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
