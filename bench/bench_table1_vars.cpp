// Reproduces paper Table 1: "NFactor variable categorization and
// examples" — the StateAlyzer features (persistent / top-level /
// updateable / output-impacting) and resulting categories for the
// Figure-1 load balancer.
#include <cstdio>

#include "bench/bench_util.h"
#include "statealyzer/statealyzer.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Table 1: NFactor variable categorization on the LB example\n");
  benchutil::rule('=');
  const auto r = benchutil::run_nf("lb");

  std::printf("%-22s | %-6s | pers top upd ois\n", "variable", "cat");
  benchutil::rule();
  for (const auto& [name, f] : r.cats.features) {
    if (name.starts_with("__") || name.find('$') != std::string::npos) {
      continue;  // lowering temporaries / inlined locals
    }
    std::printf("%-22s | %-6s |  %c    %c   %c   %c\n", name.c_str(),
                statealyzer::to_string(r.cats.category.at(name)).c_str(),
                f.persistent ? 'x' : '.', f.top_level ? 'x' : '.',
                f.updateable ? 'x' : '.', f.output_impacting ? 'x' : '.');
  }
  benchutil::rule();
  std::printf(
      "Expected (paper Table 1): pktVar=pkt; cfgVar ⊇ {mode, LB_IP};\n"
      "oisVar ⊇ {f2b_nat, rr_idx}; logVar = {pass_stat, drop_stat}.\n\n");
}

void BM_StateAlyzer(benchmark::State& state) {
  const auto& e = nfs::find("lb");
  auto r = pipeline::run(lang::parse(e.source, "lb"));
  for (auto _ : state) {
    auto cats = statealyzer::analyze(*r.module, *r.pdg);
    benchmark::DoNotOptimize(cats.ois_vars.size());
  }
}
BENCHMARK(BM_StateAlyzer);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
