// Dataplane engine throughput: compile every corpus NF's synthesized
// model (docs/dataplane.md) and push multi-million-packet batches
// through the flattened FDD, next to the model interpreter processing
// the same traffic packet-by-packet. Emits dataplane.<nf>.pps and
// dataplane.<nf>.ns_per_packet gauges — the snort_lite/dpi values feed
// the CI perf-smoke gate (bench/perf_baseline.json).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "dataplane/engine.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"

namespace {

using namespace nfactor;
using Clock = std::chrono::steady_clock;

// NIC-ring-sized batches: the pool is replayed round-robin, like a
// driver recycling its descriptor ring, so both legs measure the same
// traffic under the same cache residency.
constexpr int kPoolSize = 32768;  // packets per execute_batch call
constexpr int kBatchRounds = 64;  // rounds -> 2.1M packets compiled
// The interpreter leg is short: eval_concrete's copy-on-store map
// semantics make its per-packet cost grow with the flow table, so a
// long run would mostly measure ever-bigger map copies. Measuring it
// young *understates* its cost — the reported speedup is conservative.
constexpr int kInterpPackets = 5000;

struct Compiled {
  pipeline::PipelineResult r;
  std::map<std::string, runtime::Value> store;
  dataplane::CompiledTable table;
};

Compiled compile_nf(const std::string& name) {
  // The nf-synth production path: simplify + config folding on, then
  // specialize the compile against the module's initial store.
  pipeline::PipelineOptions opts;
  opts.simplify.enabled = true;
  opts.simplify.fold_config = true;
  Compiled c{benchutil::run_nf(name, opts), {}, {}};
  c.store = model::initial_store(*c.r.module);
  dataplane::CompileOptions copts;
  copts.bindings = &c.store;
  c.table = dataplane::compile(c.r.model, copts);
  return c;
}

const std::vector<netsim::Packet>& pool() {
  static const std::vector<netsim::Packet> p = [] {
    netsim::PacketGen gen(42);
    return gen.batch(kPoolSize);
  }();
  return p;
}

void report() {
  std::printf("Compiled dataplane vs model interpreter (%d-packet batches, "
              "%.1fM packets/NF)\n",
              kPoolSize, kPoolSize * kBatchRounds / 1e6);
  benchutil::rule('=');
  std::printf("%-12s | %5s | %9s | %12s | %12s | %7s\n", "NF", "nodes",
              "preds", "interp ns/p", "compiled ns/p", "speedup");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    const std::string nf(e.name);
    const Compiled c = compile_nf(nf);

    model::ModelInterpreter interp(c.r.model, c.store);
    const auto t0 = Clock::now();
    for (int i = 0; i < kInterpPackets; ++i) {
      const auto out = interp.process(pool()[i % pool().size()]);
      benchmark::DoNotOptimize(out.matched_entry);
    }
    const auto t1 = Clock::now();
    const double interp_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        kInterpPackets;

    dataplane::DataplaneEngine eng(c.table, c.store);
    dataplane::BatchOutput out;
    eng.execute_batch(pool(), out);  // warm-up: constructs the send slots
    out.clear();
    const auto t2 = Clock::now();
    for (int round = 0; round < kBatchRounds; ++round) {
      out.clear();
      eng.execute_batch(pool(), out);
      benchmark::DoNotOptimize(out.matched.data());
    }
    const auto t3 = Clock::now();
    const double total = static_cast<double>(kPoolSize) * kBatchRounds;
    const double compiled_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() / total;
    const double pps = 1e9 / compiled_ns;

    char preds[16];
    std::snprintf(preds, sizeof preds, "%zu/%zu", c.table.compiled_preds,
                  c.table.preds.size());
    std::printf("%-12s | %5zu | %9s | %12.1f | %12.1f | %6.1fx\n", nf.c_str(),
                c.table.nodes.size(), preds, interp_ns, compiled_ns,
                interp_ns / compiled_ns);

    OBS_GAUGE("dataplane." + nf + ".pps", pps);
    OBS_GAUGE("dataplane." + nf + ".ns_per_packet", compiled_ns);
    OBS_GAUGE("dataplane." + nf + ".interp_ns_per_packet", interp_ns);
    OBS_GAUGE("dataplane." + nf + ".speedup", interp_ns / compiled_ns);
  }
  benchutil::rule();
  std::printf("interp = ModelInterpreter::process per packet; compiled = one\n"
              "execute_batch call per %d packets over the flattened FDD.\n"
              "Stateful NFs mutate real per-flow state throughout the run.\n\n",
              kPoolSize);
}

void BM_CompiledBatch(benchmark::State& state, const char* nf) {
  const Compiled c = compile_nf(nf);
  dataplane::DataplaneEngine eng(c.table, c.store);
  dataplane::BatchOutput out;
  for (auto _ : state) {
    out.clear();
    eng.execute_batch(pool(), out);
    benchmark::DoNotOptimize(out.matched.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool().size()));
}
BENCHMARK_CAPTURE(BM_CompiledBatch, snort_lite, "snort_lite")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompiledBatch, dpi, "dpi")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompiledBatch, nat, "nat")->Unit(benchmark::kMillisecond);

void BM_ModelInterp(benchmark::State& state, const char* nf) {
  const Compiled c = compile_nf(nf);
  model::ModelInterpreter interp(c.r.model, c.store);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto out = interp.process(pool()[i++ % pool().size()]);
    benchmark::DoNotOptimize(out.matched_entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ModelInterp, snort_lite, "snort_lite");
BENCHMARK_CAPTURE(BM_ModelInterp, dpi, "dpi");

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
