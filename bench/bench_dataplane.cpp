// Dataplane engine throughput: compile every corpus NF's synthesized
// model (docs/dataplane.md) and push multi-million-packet batches
// through both execution tiers — tier 1's flattened-FDD table walk and
// tier 2's threaded code — next to the model interpreter processing the
// same traffic packet-by-packet. Emits dataplane.<nf>.pps,
// dataplane.<nf>.ns_per_packet, and dataplane.<nf>.threaded_ns_per_packet
// gauges — the snort_lite/dpi values feed the CI perf-smoke gate
// (bench/perf_baseline.json).
//
// Also here: the shard sweep (ShardedDataplane at 1/2/4/8 shards,
// dataplane.<nf>.shards<N>.pps) and the payload-scan microbench that
// justifies the BMH crossover (dataplane.payload_scan.ns_per_kb).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "dataplane/engine.h"
#include "dataplane/sharded.h"
#include "dataplane/threaded.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"

namespace {

using namespace nfactor;
using Clock = std::chrono::steady_clock;

// NIC-ring-sized batches: the pool is replayed round-robin, like a
// driver recycling its descriptor ring, so both legs measure the same
// traffic under the same cache residency.
constexpr int kPoolSize = 32768;  // packets per execute_batch call
constexpr int kBatchRounds = 64;  // rounds -> 2.1M packets compiled
// The interpreter leg is short: eval_concrete's copy-on-store map
// semantics make its per-packet cost grow with the flow table, so a
// long run would mostly measure ever-bigger map copies. Measuring it
// young *understates* its cost — the reported speedup is conservative.
constexpr int kInterpPackets = 5000;

struct Compiled {
  pipeline::PipelineResult r;
  std::map<std::string, runtime::Value> store;
  dataplane::CompiledTable table;
};

Compiled compile_nf(const std::string& name) {
  // The nf-synth production path: simplify + config folding on, then
  // specialize the compile against the module's initial store.
  pipeline::PipelineOptions opts;
  opts.simplify.enabled = true;
  opts.simplify.fold_config = true;
  Compiled c{benchutil::run_nf(name, opts), {}, {}};
  c.store = model::initial_store(*c.r.module);
  dataplane::CompileOptions copts;
  copts.bindings = &c.store;
  c.table = dataplane::compile(c.r.model, copts);
  return c;
}

/// NFACTOR_BENCH_NF=<name> restricts the per-NF sections to one corpus
/// entry — a tight loop for chasing a single NF's regression without
/// sitting through the full sweep. Unset runs everything.
bool nf_selected(const std::string& nf) {
  const char* only = std::getenv("NFACTOR_BENCH_NF");
  return only == nullptr || nf == only;
}

const std::vector<netsim::Packet>& pool() {
  static const std::vector<netsim::Packet> p = [] {
    netsim::PacketGen gen(42);
    return gen.batch(kPoolSize);
  }();
  return p;
}


void report() {
  std::printf("Compiled dataplane vs model interpreter (%d-packet batches, "
              "%.1fM packets/NF/tier, dispatch: %s)\n",
              kPoolSize, kPoolSize * kBatchRounds / 1e6,
              dataplane::threaded_dispatch_is_computed_goto()
                  ? "computed goto"
                  : "switch loop");
  benchutil::rule('=');
  std::printf("%-12s | %5s | %9s | %11s | %10s | %10s | %6s | %6s\n", "NF",
              "nodes", "preds", "interp ns/p", "tier1 ns/p", "tier2 ns/p",
              "t1 x", "t2/t1");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    const std::string nf(e.name);
    if (!nf_selected(nf)) continue;
    const Compiled c = compile_nf(nf);

    model::ModelInterpreter interp(c.r.model, c.store);
    const auto t0 = Clock::now();
    for (int i = 0; i < kInterpPackets; ++i) {
      const auto out = interp.process(pool()[i % pool().size()]);
      benchmark::DoNotOptimize(out.matched_entry);
    }
    const auto t1 = Clock::now();
    const double interp_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        kInterpPackets;

    dataplane::DataplaneEngine eng(c.table, c.store);
    dataplane::DataplaneEngine thr(
        c.table, c.store, dataplane::EngineOptions{dataplane::Tier::kThreaded});
    // The two tiers are timed *interleaved*, one batch each per round:
    // container CPU-frequency drift between two back-to-back phases was
    // measurably larger than the tier delta itself, and interleaving
    // cancels it out of the t2/t1 ratio.
    dataplane::BatchOutput out1;
    dataplane::BatchOutput out2;
    eng.execute_batch(pool(), out1);  // warm-up: constructs the send slots
    thr.execute_batch(pool(), out2);
    double t1_total = 0;
    double t2_total = 0;
    for (int round = 0; round < kBatchRounds; ++round) {
      out1.clear();
      const auto a = Clock::now();
      eng.execute_batch(pool(), out1);
      benchmark::DoNotOptimize(out1.matched.data());
      const auto b = Clock::now();
      out2.clear();
      thr.execute_batch(pool(), out2);
      benchmark::DoNotOptimize(out2.matched.data());
      const auto d = Clock::now();
      t1_total += std::chrono::duration<double, std::nano>(b - a).count();
      t2_total += std::chrono::duration<double, std::nano>(d - b).count();
    }
    const double per_packet = static_cast<double>(kPoolSize) * kBatchRounds;
    const double compiled_ns = t1_total / per_packet;
    const double threaded_ns = t2_total / per_packet;
    const double pps = 1e9 / compiled_ns;

    char preds[16];
    std::snprintf(preds, sizeof preds, "%zu/%zu", c.table.compiled_preds,
                  c.table.preds.size());
    std::printf("%-12s | %5zu | %9s | %11.1f | %10.1f | %10.1f | %5.1fx | "
                "%5.2fx\n",
                nf.c_str(), c.table.nodes.size(), preds, interp_ns, compiled_ns,
                threaded_ns, interp_ns / compiled_ns,
                compiled_ns / threaded_ns);

    OBS_GAUGE("dataplane." + nf + ".pps", pps);
    OBS_GAUGE("dataplane." + nf + ".ns_per_packet", compiled_ns);
    OBS_GAUGE("dataplane." + nf + ".threaded_ns_per_packet", threaded_ns);
    OBS_GAUGE("dataplane." + nf + ".threaded_pps", 1e9 / threaded_ns);
    OBS_GAUGE("dataplane." + nf + ".interp_ns_per_packet", interp_ns);
    OBS_GAUGE("dataplane." + nf + ".speedup", interp_ns / compiled_ns);
  }
  benchutil::rule();
  std::printf("interp = ModelInterpreter::process per packet; tier1 = table\n"
              "walk, tier2 = threaded code, one execute_batch per %d packets.\n"
              "t2/t1 = table-walk ns over threaded ns (higher = tier 2 wins).\n"
              "Stateful NFs mutate real per-flow state throughout the run.\n\n",
              kPoolSize);
}

/// Shard sweep: aggregate throughput of ShardedDataplane (threaded tier)
/// at 1/2/4/8 shards. Aggregate pps counts every input packet once; the
/// per-batch partition/scatter cost is included, so shards=1 is slightly
/// below the raw single-engine number. Scaling beyond 1x needs real
/// cores — on a single-core container the sweep only measures pool
/// overhead (see docs/dataplane.md).
void shard_sweep() {
  std::printf("Sharded pipeline sweep (threaded tier, %d-packet batches, "
              "hardware threads: %u)\n",
              kPoolSize, std::thread::hardware_concurrency());
  benchutil::rule('=');
  std::printf("%-12s | %11s | %11s | %11s | %11s | %7s\n", "NF", "1-shard pps",
              "2-shard pps", "4-shard pps", "8-shard pps", "4sh/1sh");
  benchutil::rule();
  for (const std::string nf : {"snort_lite", "dpi", "nat"}) {
    if (!nf_selected(nf)) continue;
    const Compiled c = compile_nf(nf);
    double pps1 = 0, pps4 = 0;
    std::printf("%-12s |", nf.c_str());
    for (const int shards : {1, 2, 4, 8}) {
      dataplane::ShardOptions sopts;
      sopts.shards = shards;
      sopts.engine.tier = dataplane::Tier::kThreaded;
      dataplane::ShardedDataplane sharded(c.table, c.store, sopts);
      dataplane::ShardedOutput out;
      sharded.execute_batch(pool(), out);  // warm-up
      const int rounds = kBatchRounds / 4;
      const auto t0 = Clock::now();
      for (int round = 0; round < rounds; ++round) {
        sharded.execute_batch(pool(), out);
        benchmark::DoNotOptimize(out.matched.data());
      }
      const auto t1 = Clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          (static_cast<double>(kPoolSize) * rounds);
      const double pps = 1e9 / ns;
      if (shards == 1) pps1 = pps;
      if (shards == 4) pps4 = pps;
      std::printf(" %11.3g |", pps);
      OBS_GAUGE("dataplane." + nf + ".shards" + std::to_string(shards) + ".pps",
                pps);
    }
    std::printf(" %6.2fx\n", pps4 / pps1);
  }
  benchutil::rule();
  std::printf("Aggregate packets/s over all shards, partition + scatter "
              "included.\n\n");
}

/// Payload-scan microbench: memchr-hop vs BMH vs the engine's adaptive
/// scan, across two haystack regimes. "sparse" is random noise where
/// the needle's first byte is rare — memchr's vectorized sweep is
/// unbeatable there at any needle length. "dense" draws haystack bytes
/// from the needle's own alphabet (minus its last byte, so no match
/// ever completes): first-byte candidates every few bytes degrade the
/// hop to a memcmp crawl, while BMH's cost stays ~1/needle_len probes
/// per byte. The crossover this table proves: for needles >=
/// kBmhMinNeedle the dense-regime ratio flips decisively to BMH, and
/// the adaptive scan tracks the winner in *both* regimes, which is why
/// payload_contains uses it for long needles.
void payload_scan_bench() {
  constexpr std::size_t kHay = 64 * 1024;
  constexpr int kIters = 400;
  const char* const needle_texts[] = {"GET ", "exploit", "USER root",
                                      "/etc/passwd", "ThisNeedleIsVeryLong"};
  const auto time_scan = [&](const std::vector<std::uint8_t>& hay,
                             const auto& scan) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) benchmark::DoNotOptimize(scan(hay));
    const auto t1 = Clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (kIters * (kHay / 1024.0));
  };
  std::printf("Payload scan: memchr hop vs BMH vs adaptive, %zu KiB "
              "haystack, no match (worst case)\n",
              kHay / 1024);
  benchutil::rule('=');
  std::printf("%-20s | %3s | %-6s | %10s | %10s | %10s | %7s\n", "needle",
              "len", "hay", "mem ns/KB", "bmh ns/KB", "adap ns/KB",
              "bmh/mem");
  benchutil::rule();
  double engine_ns_per_kb = 0;
  int engine_cells = 0;
  for (const char* text : needle_texts) {
    const dataplane::Needle needle = dataplane::make_needle(text);
    const std::size_t len = needle.text.size();
    for (const bool dense : {false, true}) {
      std::vector<std::uint8_t> hay(kHay);
      std::uint64_t s = 0x9e3779b97f4a7c15ull;  // deterministic noise
      for (auto& b : hay) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        if (dense) {
          // Bytes from the needle's own alphabet, excluding its last
          // byte: candidates everywhere, but no probe ever completes.
          b = static_cast<std::uint8_t>(needle.text[(s >> 33) % (len - 1)]);
        } else {
          b = static_cast<std::uint8_t>('0' + ((s >> 33) % 10));
        }
      }
      const double mem_ns = time_scan(hay, [&](const auto& h) {
        return dataplane::scan_memchr_hop({h.data(), h.size()}, needle.text);
      });
      const double bmh_ns = time_scan(hay, [&](const auto& h) {
        return dataplane::scan_bmh({h.data(), h.size()}, needle);
      });
      const double adaptive_ns = time_scan(hay, [&](const auto& h) {
        return dataplane::scan_adaptive({h.data(), h.size()}, needle);
      });
      std::printf("%-20s | %3zu | %-6s | %10.2f | %10.2f | %10.2f | %6.2fx\n",
                  text, len, dense ? "dense" : "sparse", mem_ns, bmh_ns,
                  adaptive_ns, bmh_ns / mem_ns);
      const std::string key = std::string(".len") + std::to_string(len) +
                              (dense ? ".dense" : ".sparse") + ".ns_per_kb";
      OBS_GAUGE("dataplane.payload_scan.memchr" + key, mem_ns);
      OBS_GAUGE("dataplane.payload_scan.bmh" + key, bmh_ns);
      OBS_GAUGE("dataplane.payload_scan.adaptive" + key, adaptive_ns);
      // The headline gauge: what payload_contains actually pays.
      engine_ns_per_kb += needle.use_bmh ? adaptive_ns : mem_ns;
      ++engine_cells;
    }
  }
  benchutil::rule();
  OBS_GAUGE("dataplane.payload_scan.ns_per_kb",
            engine_ns_per_kb / engine_cells);
  std::printf("engine = payload_contains dispatch: memchr hop below %zu "
              "bytes, adaptive (hop, then BMH once %zu candidates fail) at "
              "or above.\n\n",
              dataplane::kBmhMinNeedle, dataplane::kScanSwitchCandidates);
}

void BM_CompiledBatch(benchmark::State& state, const char* nf) {
  const Compiled c = compile_nf(nf);
  dataplane::DataplaneEngine eng(c.table, c.store);
  dataplane::BatchOutput out;
  for (auto _ : state) {
    out.clear();
    eng.execute_batch(pool(), out);
    benchmark::DoNotOptimize(out.matched.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool().size()));
}
BENCHMARK_CAPTURE(BM_CompiledBatch, snort_lite, "snort_lite")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompiledBatch, dpi, "dpi")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompiledBatch, nat, "nat")->Unit(benchmark::kMillisecond);

void BM_ThreadedBatch(benchmark::State& state, const char* nf) {
  const Compiled c = compile_nf(nf);
  dataplane::DataplaneEngine eng(
      c.table, c.store, dataplane::EngineOptions{dataplane::Tier::kThreaded});
  dataplane::BatchOutput out;
  for (auto _ : state) {
    out.clear();
    eng.execute_batch(pool(), out);
    benchmark::DoNotOptimize(out.matched.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool().size()));
}
BENCHMARK_CAPTURE(BM_ThreadedBatch, snort_lite, "snort_lite")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadedBatch, dpi, "dpi")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadedBatch, nat, "nat")->Unit(benchmark::kMillisecond);

void BM_ModelInterp(benchmark::State& state, const char* nf) {
  const Compiled c = compile_nf(nf);
  model::ModelInterpreter interp(c.r.model, c.store);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto out = interp.process(pool()[i++ % pool().size()]);
    benchmark::DoNotOptimize(out.matched_entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ModelInterp, snort_lite, "snort_lite");
BENCHMARK_CAPTURE(BM_ModelInterp, dpi, "dpi");

}  // namespace

int main(int argc, char** argv) {
  report();
  if (std::getenv("NFACTOR_BENCH_NF") != nullptr) {
    // Single-NF iteration mode: skip the NF-independent sections.
    return nfactor::benchutil::bench_main(argc, argv);
  }
  shard_sweep();
  payload_scan_bench();
  return nfactor::benchutil::bench_main(argc, argv);
}
