// Reproduces paper Figures 4 and 5: the four typical NF code structures
// and their normalization into one packet-processing loop. For each
// corpus NF the bench reports the detected structure, applies the §3.2
// transform, and shows that the result lowers to the canonical per-packet
// CFG; for the nested-loop balance it prints the Figure-5 style unfolded
// main().
#include <cstdio>

#include "bench/bench_util.h"
#include "ir/lower.h"
#include "transform/normalize.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Figures 4-5: code-structure normalization (§3.2)\n");
  benchutil::rule('=');
  std::printf("%-12s | %-18s | %s\n", "NF", "structure (Fig.4)",
              "after normalize -> canonical loop?");
  benchutil::rule();
  for (const auto& e : nfs::corpus()) {
    auto prog = lang::parse(e.source, std::string(e.name));
    const auto structure = transform::detect_structure(prog);
    auto canon = transform::normalize(prog);
    const auto after = transform::detect_structure(canon);
    auto mod = ir::lower(canon.clone());
    std::printf("%-12s | %-18s | %s, %zu body stmts, pkt var '%s'\n",
                std::string(e.name).c_str(),
                transform::to_string(structure).c_str(),
                transform::to_string(after).c_str(),
                mod.body.real_nodes().size(), mod.pkt_var.c_str());
  }
  benchutil::rule();

  // Figure 5: the unfolded balance main loop.
  auto balance = lang::parse(nfs::find("balance").source, "balance");
  auto unfolded = transform::normalize(balance);
  std::printf("\nFigure 5 (nested loop -> one loop): unfolded balance:\n\n%s\n",
              lang::to_source(unfolded).c_str());
}

void BM_NormalizeCallback(benchmark::State& state) {
  auto prog = lang::parse(nfs::find("lb").source, "lb");
  for (auto _ : state) {
    auto out = transform::normalize(prog);
    benchmark::DoNotOptimize(out.funcs.size());
  }
}
BENCHMARK(BM_NormalizeCallback);

void BM_UnfoldSockets(benchmark::State& state) {
  auto prog = lang::parse(nfs::find("balance").source, "balance");
  for (auto _ : state) {
    auto out = transform::normalize(prog);
    benchmark::DoNotOptimize(out.funcs.size());
  }
}
BENCHMARK(BM_UnfoldSockets);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
