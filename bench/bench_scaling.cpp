// Ablation: how slicing and symbolic-execution cost scale with program
// size. Synthetic NFs with K forwarding-irrelevant statistic branches
// and R header rules show the paper's core economics: SE on the original
// grows exponentially in K (until the cap), while the slice is immune to
// K and grows gently with R — slicing is what makes SE tractable (§3.2
// "Execution Paths").
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Scaling: SE paths & time vs program size (synthetic NFs)\n");
  benchutil::rule('=');
  std::printf("%-22s | %5s | %14s | %14s | %8s\n", "program", "LoC",
              "EP orig", "EP slice", "slicing");
  benchutil::rule();
  for (const int k : {2, 4, 6, 8, 10, 12}) {
    const std::string src = nfs::synthetic_nf(k, 4);
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    // The rule loop revisits one symbolic branch per rule; keep the loop
    // bound above the largest rule count in the sweep.
    opts.se_orig.max_loop_iters = 64;
    opts.se_slice.max_loop_iters = 64;
    const auto r = pipeline::run_source(src, "synthetic_k" + std::to_string(k),
                                        opts);
    char orig[48];
    std::snprintf(orig, sizeof(orig), "%s%zu (%.1fms)",
                  r.orig_stats.hit_path_cap ? ">" : "", r.orig_paths.size(),
                  r.times.se_orig_ms);
    char slice[48];
    std::snprintf(slice, sizeof(slice), "%zu (%.1fms)", r.slice_paths.size(),
                  r.times.se_slice_ms);
    std::printf("%-22s | %5d | %14s | %14s | %6.2fms\n",
                ("stat-branches k=" + std::to_string(k)).c_str(), r.loc_orig,
                orig, slice, r.times.slicing_ms);
  }
  benchutil::rule();
  for (const int rules : {2, 8, 16, 32}) {
    const std::string src = nfs::synthetic_nf(4, rules);
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    // The rule loop revisits one symbolic branch per rule; keep the loop
    // bound above the largest rule count in the sweep.
    opts.se_orig.max_loop_iters = 64;
    opts.se_slice.max_loop_iters = 64;
    const auto r = pipeline::run_source(src, "synthetic_r" + std::to_string(rules),
                                        opts);
    std::printf("%-22s | %5d | %10zu (%.0fms) | %10zu (%.0fms) | %6.2fms\n",
                ("rules r=" + std::to_string(rules)).c_str(), r.loc_orig,
                r.orig_paths.size(), r.times.se_orig_ms,
                r.slice_paths.size(), r.times.se_slice_ms,
                r.times.slicing_ms);
  }
  benchutil::rule();
  std::printf("\n");
}

void BM_SliceSyntheticK(benchmark::State& state) {
  const std::string src = nfs::synthetic_nf(static_cast<int>(state.range(0)), 4);
  auto prog = lang::parse(src, "synthetic");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.slice_paths.size());
  }
}
BENCHMARK(BM_SliceSyntheticK)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
