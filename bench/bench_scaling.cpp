// Ablation: how slicing and symbolic-execution cost scale with program
// size. Synthetic NFs with K forwarding-irrelevant statistic branches
// and R header rules show the paper's core economics: SE on the original
// grows exponentially in K (until the cap), while the slice is immune to
// K and grows gently with R — slicing is what makes SE tractable (§3.2
// "Execution Paths").
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("Scaling: SE paths & time vs program size (synthetic NFs)\n");
  benchutil::rule('=');
  std::printf("%-22s | %5s | %14s | %14s | %8s\n", "program", "LoC",
              "EP orig", "EP slice", "slicing");
  benchutil::rule();
  for (const int k : {2, 4, 6, 8, 10, 12}) {
    const std::string src = nfs::synthetic_nf(k, 4);
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    // The rule loop revisits one symbolic branch per rule; keep the loop
    // bound above the largest rule count in the sweep.
    opts.se_orig.max_loop_iters = 64;
    opts.se_slice.max_loop_iters = 64;
    const auto r = pipeline::run_source(src, "synthetic_k" + std::to_string(k),
                                        opts);
    char orig[48];
    std::snprintf(orig, sizeof(orig), "%s%zu (%.1fms)",
                  r.orig_stats.hit_path_cap ? ">" : "", r.orig_paths.size(),
                  r.times.se_orig_ms);
    char slice[48];
    std::snprintf(slice, sizeof(slice), "%zu (%.1fms)", r.slice_paths.size(),
                  r.times.se_slice_ms);
    std::printf("%-22s | %5d | %14s | %14s | %6.2fms\n",
                ("stat-branches k=" + std::to_string(k)).c_str(), r.loc_orig,
                orig, slice, r.times.slicing_ms);
  }
  benchutil::rule();
  for (const int rules : {2, 8, 16, 32}) {
    const std::string src = nfs::synthetic_nf(4, rules);
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    // The rule loop revisits one symbolic branch per rule; keep the loop
    // bound above the largest rule count in the sweep.
    opts.se_orig.max_loop_iters = 64;
    opts.se_slice.max_loop_iters = 64;
    const auto r = pipeline::run_source(src, "synthetic_r" + std::to_string(rules),
                                        opts);
    std::printf("%-22s | %5d | %10zu (%.0fms) | %10zu (%.0fms) | %6.2fms\n",
                ("rules r=" + std::to_string(rules)).c_str(), r.loc_orig,
                r.orig_paths.size(), r.times.se_orig_ms,
                r.slice_paths.size(), r.times.se_slice_ms,
                r.times.slicing_ms);
  }
  benchutil::rule();
  std::printf("\n");
}

// Thread sweep: the same NF at 1/2/4/8 SE workers. Paths and model are
// byte-identical at every width (that is enforced by ctest, not here);
// what this measures is wall time. Gauges land in the metrics JSON
// (--metrics-out / NFACTOR_METRICS_OUT) as
//   scaling.<nf>.jobs<N>.se_ms and scaling.<nf>.jobs<N>.speedup.
void report_thread_sweep() {
  std::printf("Thread sweep: SE wall time vs --jobs (slice + orig SE)\n");
  benchutil::rule('=');
  std::printf("%-12s | %5s | %10s | %8s | %10s\n", "NF", "jobs", "SE time",
              "speedup", "cache hit%");
  benchutil::rule();
  for (const char* name : {"snort_lite", "nat"}) {
    const auto& e = nfs::find(name);
    double base_ms = 0.0;
    for (const int jobs : {1, 2, 4, 8}) {
      pipeline::PipelineOptions opts;
      opts.run_orig_se = true;
      opts.jobs = jobs;
      const auto r =
          pipeline::run_source(e.source, std::string(e.name), opts);
      const double se_ms = r.times.se_slice_ms + r.times.se_orig_ms;
      if (jobs == 1) base_ms = se_ms;
      const double speedup = se_ms > 0.0 ? base_ms / se_ms : 0.0;
      const auto& ss = r.slice_stats;
      const auto& os = r.orig_stats;
      const std::uint64_t hits = ss.cache_hits + os.cache_hits;
      const std::uint64_t lookups =
          hits + ss.cache_misses + os.cache_misses;
      const double hit_pct =
          lookups > 0 ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(lookups)
                      : 0.0;
      const std::string tag =
          "scaling." + std::string(name) + ".jobs" + std::to_string(jobs);
      OBS_GAUGE(tag + ".se_ms", se_ms);
      OBS_GAUGE(tag + ".speedup", speedup);
      OBS_GAUGE(tag + ".cache_hit_rate", hit_pct / 100.0);
      std::printf("%-12s | %5d | %8.2fms | %7.2fx | %9.1f%%\n", name, jobs,
                  se_ms, speedup, hit_pct);
    }
    benchutil::rule();
  }
  std::printf("\n");
}

void BM_SliceSyntheticK(benchmark::State& state) {
  const std::string src = nfs::synthetic_nf(static_cast<int>(state.range(0)), 4);
  auto prog = lang::parse(src, "synthetic");
  for (auto _ : state) {
    auto r = pipeline::run(prog);
    benchmark::DoNotOptimize(r.slice_paths.size());
  }
}
BENCHMARK(BM_SliceSyntheticK)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  report_thread_sweep();
  return nfactor::benchutil::bench_main(argc, argv);
}
