// Reproduces the paper's §5 "Accuracy" experiment:
//  (1) random-input differential testing — 1000 random packets per NF
//      through the original program and the synthesized model; outputs
//      (and output-impacting state) must agree in every trial;
//  (2) path-set comparison — symbolic execution of the original program
//      and of the slice must yield the same set of forwarding-action
//      signatures.
// The paper runs this for its 2 NFs; we run it for all six corpus NFs.
#include <cstdio>

#include "bench/bench_util.h"
#include "model/interp.h"
#include "netsim/packet_gen.h"
#include "runtime/interp.h"
#include "verify/equivalence.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("§5 Accuracy: model vs original program\n");
  benchutil::rule('=');
  std::printf("%-12s | %7s | %9s %9s | %8s | %s\n", "NF", "packets",
              "sent:orig", "sent:model", "mismatch", "action-path-sets");
  benchutil::rule();

  for (const auto& e : nfs::corpus()) {
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 4096;
    const auto r = benchutil::run_nf(std::string(e.name), opts);

    // (1) 1000 random packets, plus full TCP flows for the stateful NFs.
    netsim::PacketGen gen(42 + r.loc_orig);
    std::vector<netsim::Packet> packets = gen.batch(1000);
    for (int i = 0; i < 20; ++i) {
      const auto flow = gen.handshake_flow(6);
      packets.insert(packets.end(), flow.begin(), flow.end());
    }
    const auto diff =
        verify::differential_test(*r.module, r.cats, r.model, packets);

    // (2) action-signature path-set comparison (orig SE vs slice SE).
    const auto cmp =
        verify::compare_action_sets(r.orig_paths, r.slice_paths, r.cats);
    char pathset[64];
    if (r.orig_stats.hit_path_cap) {
      std::snprintf(pathset, sizeof(pathset), "skipped (orig capped)");
    } else {
      std::snprintf(pathset, sizeof(pathset), "%s (%zu common)",
                    cmp.equal() ? "EQUAL" : "DIFFER", cmp.common);
    }
    std::printf("%-12s | %7d | %9d %9d | %8d | %s\n",
                std::string(e.name).c_str(), diff.packets, diff.original_sent,
                diff.model_sent, diff.mismatches, pathset);
    if (!diff.ok() && !diff.details.empty()) {
      std::printf("    first mismatch: %s\n", diff.details[0].c_str());
    }
    if (!r.orig_stats.hit_path_cap && !cmp.equal()) {
      for (const auto& s : cmp.only_in_a) {
        std::printf("    only in orig:  %s\n", s.c_str());
      }
      for (const auto& s : cmp.only_in_b) {
        std::printf("    only in slice: %s\n", s.c_str());
      }
    }
  }
  benchutil::rule();
  std::printf("(paper: 1000 trials per NF, outputs identical in every "
              "experiment)\n\n");
}

void BM_ModelInterpreterThroughput(benchmark::State& state) {
  const auto r = benchutil::run_nf("lb");
  model::ModelInterpreter synth(r.model, model::initial_store(*r.module));
  netsim::PacketGen gen(7);
  const auto packets = gen.batch(256);
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = synth.process(packets[i++ % packets.size()]);
    benchmark::DoNotOptimize(out.sent.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelInterpreterThroughput);

void BM_OriginalInterpreterThroughput(benchmark::State& state) {
  const auto r = benchutil::run_nf("lb");
  runtime::Interpreter orig(*r.module);
  netsim::PacketGen gen(7);
  const auto packets = gen.batch(256);
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = orig.process(packets[i++ % packets.size()]);
    benchmark::DoNotOptimize(out.sent.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OriginalInterpreterThroughput);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
