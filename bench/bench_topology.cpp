// Network-scale topology verification: query latency and solver-cache
// leverage over the 18-instance datacenter fabric (examples/
// datacenter.topo), the paper's §4 applications scaled from a single
// chain to a branching instance graph. The report prints the three
// acceptance queries with their stats; the timed section measures query
// evaluation at jobs 1 vs 4 (shared-cache warm) and end-to-end witness
// materialization + three-backend replay.
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "symex/solver.h"
#include "verify/topology.h"
#include "verify/witness.h"

namespace {

using namespace nfactor;

/// Corpus models synthesized once with the production settings
/// (simplify + config folding), addresses stable for the topology.
verify::NodeModels resolve(const std::string& nf) {
  static std::map<std::string, pipeline::PipelineResult> cache;
  auto it = cache.find(nf);
  if (it == cache.end()) {
    pipeline::PipelineOptions opts;
    opts.simplify.enabled = true;
    opts.simplify.fold_config = true;
    it = cache.emplace(nf, benchutil::run_nf(nf, opts)).first;
  }
  return {&it->second.model, it->second.module.get()};
}

const verify::Topology& datacenter() {
  static const verify::Topology topo = [] {
    std::ifstream in(std::string(NFACTOR_SOURCE_DIR) +
                     "/examples/datacenter.topo");
    std::ostringstream ss;
    ss << in.rdbuf();
    return verify::parse_topology(ss.str(), resolve);
  }();
  return topo;
}

const char* const kQueries[] = {
    "reach cust_a web_out",
    "isolate cust_a quarantine where pkt.ip_proto != 6",
    "waypoint cust_a web_out via syn_guard",
};

void report() {
  std::printf("network-scale verification: 18-instance datacenter fabric\n");
  benchutil::rule('=');
  const auto& topo = datacenter();
  std::printf("topology: %zu instances, %zu links, %zu ingress, %zu egress\n\n",
              topo.nodes.size(), topo.edges.size(), topo.ingress.size(),
              topo.egress.size());

  symex::SolverCache cache;
  verify::QueryOptions opts;
  opts.jobs = 4;
  opts.solver_cache = &cache;
  for (const char* spec : kQueries) {
    const auto q = verify::parse_query(spec);
    const auto r = verify::run_query(topo, q, opts);
    verify::ReplayReport replay;
    std::optional<verify::Witness> witness;
    if (r.sat) witness = verify::find_witness(topo, r, &replay);
    std::printf("%-52s %s  frames=%-5zu paths=%-3zu witness=%s\n", spec,
                r.holds ? "HOLDS   " : "VIOLATED", r.stats.frames,
                r.paths.size(),
                witness ? (replay.consistent ? "replayed" : "DIVERGED")
                        : "-");
  }
  const auto stats = cache.stats();
  std::printf("\nshared solver cache after all queries: %llu hits / %llu "
              "misses (hit rate %.2f)\n\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.hits + stats.misses > 0
                  ? static_cast<double>(stats.hits) /
                        static_cast<double>(stats.hits + stats.misses)
                  : 0.0);
}

void BM_TopologyReach(benchmark::State& state) {
  const auto& topo = datacenter();
  const auto q = verify::parse_query("reach cust_a web_out");
  symex::SolverCache cache;  // shared across iterations: steady-state
  verify::QueryOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  opts.solver_cache = &cache;
  for (auto _ : state) {
    auto r = verify::run_query(topo, q, opts);
    benchmark::DoNotOptimize(r.paths.size());
  }
}
BENCHMARK(BM_TopologyReach)->Arg(1)->Arg(4);

void BM_TopologyIsolationProof(benchmark::State& state) {
  const auto& topo = datacenter();
  const auto q = verify::parse_query(
      "isolate cust_a quarantine where pkt.ip_proto != 6");
  symex::SolverCache cache;
  verify::QueryOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  opts.solver_cache = &cache;
  for (auto _ : state) {
    auto r = verify::run_query(topo, q, opts);
    benchmark::DoNotOptimize(r.holds);
  }
}
BENCHMARK(BM_TopologyIsolationProof)->Arg(1)->Arg(4);

void BM_WitnessMaterializeAndReplay(benchmark::State& state) {
  const auto& topo = datacenter();
  const auto q = verify::parse_query("reach cust_a web_out");
  symex::SolverCache cache;
  verify::QueryOptions opts;
  opts.jobs = 4;
  opts.solver_cache = &cache;
  const auto r = verify::run_query(topo, q, opts);
  for (auto _ : state) {
    verify::ReplayReport replay;
    auto witness = verify::find_witness(topo, r, &replay);
    benchmark::DoNotOptimize(replay.consistent);
  }
}
BENCHMARK(BM_WitnessMaterializeAndReplay);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
