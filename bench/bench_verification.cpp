// Reproduces the paper's §4 "Network Verification" application:
//  (1) model checking speed-up — symbolic execution over the extracted
//      model (its entries ARE the paths) versus over the original code;
//  (2) stateful header-space verification — each model entry as a
//      transfer function T(h, p, s), composed along a FW -> IDS -> LB
//      service chain, answering reachability queries with the solver.
#include <cstdio>

#include "bench/bench_util.h"
#include "verify/hsa.h"

namespace {

using namespace nfactor;

void report() {
  std::printf("§4 Network Verification with NFactor models\n");
  benchutil::rule('=');

  // ---- (1) model-checking speed-up --------------------------------------
  std::printf("(1) model checking: SE cost, original code vs extracted model\n");
  std::printf("%-12s | %10s | %12s | %8s\n", "NF", "orig SE", "model entries",
              "speedup");
  benchutil::rule();
  for (const auto& name : {"snort_lite", "lb", "firewall"}) {
    pipeline::PipelineOptions opts;
    opts.run_orig_se = true;
    opts.se_orig.max_paths = 1024;
    const auto r = benchutil::run_nf(name, opts);
    // Checking a property on the model enumerates its entries — the work
    // already done once at extraction; per-query cost is the slice SE.
    char orig[32];
    std::snprintf(orig, sizeof(orig), "%s%.1fms",
                  r.orig_stats.hit_path_cap ? ">" : "", r.times.se_orig_ms);
    std::printf("%-12s | %10s | %9zu ea | %6.1fx\n", name, orig,
                r.model.entries.size(),
                r.times.se_orig_ms / std::max(0.01, r.times.se_slice_ms));
  }
  benchutil::rule();

  // ---- (2) stateful reachability over a chain ----------------------------
  std::printf("\n(2) stateful reachability: FW -> IDS(snort) -> LB chain\n");
  const auto fw = benchutil::run_nf("firewall");
  const auto ids = benchutil::run_nf("snort_lite");
  const auto lb = benchutil::run_nf("lb");
  // Pin the IDS to its deployed inline-drop configuration; without the
  // pin, queries quantify over all configs (alert-only would forward).
  const auto inline_drop = symex::make_bin(
      lang::BinOp::kEq, symex::make_var("INLINE_DROP", symex::VarClass::kCfg),
      symex::make_int(1));
  const std::vector<verify::ChainHop> chain = {
      {"fw", &fw.model, {}},
      {"ids", &ids.model, {inline_drop}},
      {"lb", &lb.model, {}}};

  struct Query {
    const char* what;
    std::vector<symex::SymRef> ingress;
    bool expected;
  };
  using symex::make_bin;
  using symex::make_int;
  using symex::make_var;
  const auto pktvar = [](const char* f) {
    return make_var(std::string("pkt.") + f, symex::VarClass::kPkt);
  };
  std::vector<Query> queries;
  queries.push_back({"any packet at all", {}, true});
  queries.push_back({"LAN HTTP flow (dport 80, tcp)",
                     {make_bin(lang::BinOp::kEq, pktvar("dport"), make_int(80)),
                      make_bin(lang::BinOp::kEq, pktvar("ip_proto"), make_int(6)),
                      make_bin(lang::BinOp::kEq, pktvar("in_port"), make_int(0))},
                     true});
  queries.push_back({"telnet (tcp dport 23) must be blocked by IDS",
                     {make_bin(lang::BinOp::kEq, pktvar("dport"), make_int(23)),
                      make_bin(lang::BinOp::kEq, pktvar("ip_proto"), make_int(6))},
                     false});
  queries.push_back({"tftp (udp dport 69) must be blocked by IDS",
                     {make_bin(lang::BinOp::kEq, pktvar("dport"), make_int(69)),
                      make_bin(lang::BinOp::kEq, pktvar("ip_proto"), make_int(17))},
                     false});

  std::printf("%-45s | %-9s | %s\n", "query (ingress constraint)", "result",
              "expected");
  benchutil::rule();
  for (const auto& q : queries) {
    const auto res = verify::reachable(chain, q.ingress, 8);
    std::printf("%-45s | %-9s | %s  (%zu feasible, %zu infeasible pruned)\n",
                q.what, res.any() ? "REACHABLE" : "blocked",
                q.expected ? "reachable" : "blocked",
                res.delivered.size(), res.infeasible);
  }
  benchutil::rule();
  std::printf("\n");
}

void BM_ChainReachability(benchmark::State& state) {
  const auto fw = benchutil::run_nf("firewall");
  const auto ids = benchutil::run_nf("snort_lite");
  const auto lb = benchutil::run_nf("lb");
  const std::vector<verify::ChainHop> chain = {
      {"fw", &fw.model, {}}, {"ids", &ids.model, {}}, {"lb", &lb.model, {}}};
  for (auto _ : state) {
    auto res = verify::reachable(chain, {}, 8);
    benchmark::DoNotOptimize(res.delivered.size());
  }
}
BENCHMARK(BM_ChainReachability)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return nfactor::benchutil::bench_main(argc, argv);
}
